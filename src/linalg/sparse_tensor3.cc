#include "linalg/sparse_tensor3.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/binary_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

namespace {

// Rebuilds `m` with fn(value) applied to every stored entry (exact-zero
// results are dropped, preserving the CSR no-stored-zeros invariant).
template <typename Fn>
CsrMatrix MapValues(const CsrMatrix& m, Fn fn) {
  std::vector<std::vector<CsrMatrix::RowEntry>> rows(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    rows[i].reserve(m.row_ptr()[i + 1] - m.row_ptr()[i]);
    for (std::size_t p = m.row_ptr()[i]; p < m.row_ptr()[i + 1]; ++p) {
      rows[i].push_back({m.col_idx()[p], fn(m.values()[p])});
    }
  }
  return CsrMatrix::FromRows(m.cols(), std::move(rows));
}

}  // namespace

SparseTensor3::SparseTensor3(std::size_t dim0, std::size_t dim1,
                             std::size_t dim2)
    : dim0_(dim0), dim1_(dim1), dim2_(dim2) {
  slices_.assign(dim0, CsrMatrix::FromTriplets(dim1, dim2, {}));
}

SparseTensor3 SparseTensor3::FromDense(const Tensor3& dense,
                                       double drop_tol) {
  SparseTensor3 out(dense.dim0(), dense.dim1(), dense.dim2());
  for (std::size_t k = 0; k < dense.dim0(); ++k) {
    out.slices_[k] = CsrMatrix::FromDense(dense.Slice(k), drop_tol);
  }
  return out;
}

Tensor3 SparseTensor3::ToDense() const {
  Tensor3 out(dim0_, dim1_, dim2_);
  for (std::size_t k = 0; k < dim0_; ++k) {
    out.SetSlice(k, slices_[k].ToDense());
  }
  return out;
}

double SparseTensor3::At(std::size_t k, std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(k < dim0_) << "sparse tensor slice out of range";
  return slices_[k].At(i, j);
}

const CsrMatrix& SparseTensor3::SliceCsr(std::size_t k) const {
  SLAMPRED_CHECK(k < dim0_) << "sparse tensor slice out of range";
  return slices_[k];
}

Matrix SparseTensor3::Slice(std::size_t k) const {
  return SliceCsr(k).ToDense();
}

void SparseTensor3::SetSlice(std::size_t k, CsrMatrix slice) {
  SLAMPRED_CHECK(k < dim0_ && slice.rows() == dim1_ && slice.cols() == dim2_)
      << "sparse slice shape mismatch";
  slices_[k] = std::move(slice);
}

Vector SparseTensor3::Fiber(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < dim1_ && j < dim2_) << "sparse fibre out of range";
  Vector out(dim0_);
  for (std::size_t k = 0; k < dim0_; ++k) out[k] = slices_[k].At(i, j);
  return out;
}

Matrix SparseTensor3::SumSlices() const {
  Matrix out(dim1_, dim2_);
  // One writing chunk per output row; within a row the slices scatter in
  // k order, so each element accumulates its fibre with k ascending —
  // the dense gather's order — and the skipped zeros are exact no-ops.
  const std::size_t avg_row_work =
      dim1_ == 0 ? 1 : TotalNnz() / dim1_ + 1;
  ParallelFor(0, dim1_, GrainForWork(avg_row_work),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  double* out_row = out.data().data() + i * dim2_;
                  for (std::size_t k = 0; k < dim0_; ++k) {
                    const CsrMatrix& slice = slices_[k];
                    for (std::size_t p = slice.row_ptr()[i];
                         p < slice.row_ptr()[i + 1]; ++p) {
                      out_row[slice.col_idx()[p]] += slice.values()[p];
                    }
                  }
                }
              });
  return out;
}

void SparseTensor3::NormalizeSlicesMinMax() {
  const std::size_t per_slice = dim1_ * dim2_;
  if (per_slice == 0) return;
  for (std::size_t k = 0; k < dim0_; ++k) {
    const CsrMatrix& slice = slices_[k];
    // min/max are exactly associative-commutative, so scanning the
    // stored values and folding in one 0.0 for the implicit zeros gives
    // the same extrema as the dense full-slice scan.
    double lo = 0.0;
    double hi = 0.0;
    const bool has_implicit_zeros = slice.nnz() < per_slice;
    if (slice.nnz() > 0) {
      lo = has_implicit_zeros ? std::min(slice.values()[0], 0.0)
                              : slice.values()[0];
      hi = has_implicit_zeros ? std::max(slice.values()[0], 0.0)
                              : slice.values()[0];
      for (double v : slice.values()) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    const double range = hi - lo;
    if (range <= 0.0) {
      // Constant slice (dense maps it to all-zero).
      slices_[k] = CsrMatrix::FromTriplets(dim1_, dim2_, {});
      continue;
    }
    if (lo < 0.0 && has_implicit_zeros) {
      // Implicit zeros shift to (0 − lo)/range ≠ 0: the slice is dense
      // after scaling. Feature slices never take this branch.
      Matrix dense = slice.ToDense();
      for (double& v : dense.data()) v = (v - lo) / range;
      slices_[k] = CsrMatrix::FromDense(dense);
      continue;
    }
    // lo is exactly +0.0 when implicit zeros exist (non-negative slice),
    // so stored entries scale with the dense expression and implicit
    // zeros map to (0 − 0)/range = 0, staying implicit.
    slices_[k] =
        MapValues(slice, [&](double v) { return (v - lo) / range; });
  }
}

void SparseTensor3::ApplySqrt() {
  for (CsrMatrix& slice : slices_) {
    slice = MapValues(slice, [](double v) { return std::sqrt(v); });
  }
}

double SparseTensor3::MaxAbs() const {
  double best = 0.0;
  for (const CsrMatrix& slice : slices_) {
    best = std::max(best, slice.MaxAbs());
  }
  return best;
}

std::size_t SparseTensor3::TotalNnz() const {
  std::size_t nnz = 0;
  for (const CsrMatrix& slice : slices_) nnz += slice.nnz();
  return nnz;
}

std::size_t SparseTensor3::EstimatedBytes() const {
  std::size_t bytes = 0;
  for (const CsrMatrix& slice : slices_) bytes += slice.EstimatedBytes();
  return bytes;
}

void SparseTensor3::Serialize(BinaryWriter& writer) const {
  writer.WriteU64(dim0_);
  writer.WriteU64(dim1_);
  writer.WriteU64(dim2_);
  for (const CsrMatrix& slice : slices_) slice.Serialize(writer);
}

Result<SparseTensor3> SparseTensor3::Deserialize(BinaryReader& reader) {
  const std::size_t header_offset = reader.offset();
  auto dim0 = reader.ReadU64();
  if (!dim0.ok()) return dim0.status();
  auto dim1 = reader.ReadU64();
  if (!dim1.ok()) return dim1.status();
  auto dim2 = reader.ReadU64();
  if (!dim2.ok()) return dim2.status();
  // Each slice record is at least its 24-byte header, so dim0 can be
  // sanity-bounded against the remaining bytes before any allocation.
  if (dim0.value() > reader.remaining() / 24) {
    return Status::IoError("corrupt tensor slice count " +
                           std::to_string(dim0.value()) + " at offset " +
                           std::to_string(header_offset));
  }
  SparseTensor3 tensor(static_cast<std::size_t>(dim0.value()),
                       static_cast<std::size_t>(dim1.value()),
                       static_cast<std::size_t>(dim2.value()));
  for (std::size_t k = 0; k < tensor.dim0_; ++k) {
    auto slice = CsrMatrix::Deserialize(reader);
    if (!slice.ok()) return slice.status();
    if (slice.value().rows() != tensor.dim1_ ||
        slice.value().cols() != tensor.dim2_) {
      return Status::IoError(
          "tensor slice " + std::to_string(k) + " has shape " +
          std::to_string(slice.value().rows()) + "x" +
          std::to_string(slice.value().cols()) + ", expected " +
          std::to_string(tensor.dim1_) + "x" + std::to_string(tensor.dim2_) +
          " (record at offset " + std::to_string(header_offset) + ")");
    }
    tensor.slices_[k] = std::move(slice).value();
  }
  return tensor;
}

}  // namespace slampred
