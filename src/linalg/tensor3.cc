#include "linalg/tensor3.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

Tensor3::Tensor3(std::size_t dim0, std::size_t dim1, std::size_t dim2)
    : dim0_(dim0), dim1_(dim1), dim2_(dim2), data_(dim0 * dim1 * dim2, 0.0) {}

double Tensor3::At(std::size_t k, std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(k < dim0_ && i < dim1_ && j < dim2_)
      << "tensor index out of range";
  return (*this)(k, i, j);
}

Matrix Tensor3::Slice(std::size_t k) const {
  SLAMPRED_CHECK(k < dim0_);
  Matrix out(dim1_, dim2_);
  const double* src = &data_[k * dim1_ * dim2_];
  std::copy(src, src + dim1_ * dim2_, out.data().begin());
  return out;
}

void Tensor3::SetSlice(std::size_t k, const Matrix& slice) {
  SLAMPRED_CHECK(k < dim0_ && slice.rows() == dim1_ && slice.cols() == dim2_)
      << "slice shape mismatch";
  double* dst = &data_[k * dim1_ * dim2_];
  std::copy(slice.data().begin(), slice.data().end(), dst);
}

Vector Tensor3::Fiber(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < dim1_ && j < dim2_);
  Vector out(dim0_);
  for (std::size_t k = 0; k < dim0_; ++k) out[k] = (*this)(k, i, j);
  return out;
}

void Tensor3::SetFiber(std::size_t i, std::size_t j, const Vector& fiber) {
  SLAMPRED_CHECK(i < dim1_ && j < dim2_ && fiber.size() == dim0_);
  for (std::size_t k = 0; k < dim0_; ++k) (*this)(k, i, j) = fiber[k];
}

Matrix Tensor3::SumSlices() const {
  const std::size_t per_slice = dim1_ * dim2_;
  Matrix out(dim1_, dim2_);
  // Gather form: each output element sums its fibre with k ascending,
  // so the partitioning cannot change the accumulation order.
  ParallelFor(0, per_slice, GrainForWork(dim0_),
              [&](std::size_t idx0, std::size_t idx1) {
                for (std::size_t idx = idx0; idx < idx1; ++idx) {
                  double sum = 0.0;
                  for (std::size_t k = 0; k < dim0_; ++k) {
                    sum += data_[k * per_slice + idx];
                  }
                  out.data()[idx] = sum;
                }
              });
  return out;
}

void Tensor3::NormalizeSlicesMinMax() {
  const std::size_t per_slice = dim1_ * dim2_;
  for (std::size_t k = 0; k < dim0_; ++k) {
    double* slice = &data_[k * per_slice];
    if (per_slice == 0) continue;
    // min/max are exactly associative-commutative, so the chunked scan
    // is bit-identical to the serial one for any thread count.
    double lo = slice[0];
    double hi = slice[0];
    std::mutex minmax_mutex;
    ParallelFor(0, per_slice, GrainForWork(1),
                [&](std::size_t idx0, std::size_t idx1) {
                  double chunk_lo = slice[idx0];
                  double chunk_hi = slice[idx0];
                  for (std::size_t idx = idx0 + 1; idx < idx1; ++idx) {
                    chunk_lo = std::min(chunk_lo, slice[idx]);
                    chunk_hi = std::max(chunk_hi, slice[idx]);
                  }
                  std::lock_guard<std::mutex> lock(minmax_mutex);
                  lo = std::min(lo, chunk_lo);
                  hi = std::max(hi, chunk_hi);
                });
    const double range = hi - lo;
    if (range <= 0.0) {
      std::fill(slice, slice + per_slice, 0.0);
      continue;
    }
    ParallelFor(0, per_slice, GrainForWork(1),
                [&](std::size_t idx0, std::size_t idx1) {
                  for (std::size_t idx = idx0; idx < idx1; ++idx) {
                    slice[idx] = (slice[idx] - lo) / range;
                  }
                });
  }
}

double Tensor3::MaxAbs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

}  // namespace slampred
