#include "linalg/generalized_eigen.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/symmetric_eigen.h"
#include "util/logging.h"

namespace slampred {

Result<GeneralizedEigenResult> ComputeGeneralizedEigen(
    const Matrix& a, const Matrix& b, const GeneralizedEigenOptions& options) {
  if (a.empty() || !a.IsSquare() || b.rows() != a.rows() ||
      b.cols() != a.cols()) {
    return Status::InvalidArgument(
        "generalized eigen needs square A, B of equal order");
  }

  // Scale the ridge by the mean diagonal of B so it is dimensionless.
  double mean_diag = 0.0;
  for (std::size_t i = 0; i < b.rows(); ++i) mean_diag += std::fabs(b(i, i));
  mean_diag = std::max(mean_diag / static_cast<double>(b.rows()), 1e-12);

  double ridge = options.ridge * mean_diag;
  Result<CholeskyResult> chol = Status::Internal("unset");
  for (int attempt = 0; attempt <= options.max_ridge_retries; ++attempt) {
    Matrix b_reg = b.Symmetrized();
    for (std::size_t i = 0; i < b_reg.rows(); ++i) b_reg(i, i) += ridge;
    chol = ComputeCholesky(b_reg);
    if (chol.ok()) break;
    ridge *= 100.0;
  }
  if (!chol.ok()) {
    return Status::NumericalError(
        "B could not be regularised to positive definite: " +
        chol.status().message());
  }
  const Matrix& l = chol.value().l;

  // C = L⁻¹ A L⁻ᵀ, computed as forward-substitutions on A then on the
  // transpose of the intermediate.
  Matrix tmp = ForwardSubstituteMatrix(l, a.Symmetrized());
  Matrix c = ForwardSubstituteMatrix(l, tmp.Transposed());
  c = c.Symmetrized();

  auto eig = ComputeSymmetricEigen(c);
  if (!eig.ok()) return eig.status();

  GeneralizedEigenResult res;
  res.eigenvalues = eig.value().eigenvalues;
  // Back-substitute: x = L⁻ᵀ y for each eigenvector y of C.
  res.eigenvectors =
      BackSubstituteTransposeMatrix(l, eig.value().eigenvectors);
  return res;
}

Result<Matrix> SmallestNonZeroEigenvectors(const Matrix& a, const Matrix& b,
                                           std::size_t count,
                                           double zero_tol) {
  auto gen = ComputeGeneralizedEigen(a, b);
  if (!gen.ok()) return gen.status();
  const Vector& lambda = gen.value().eigenvalues;
  const Matrix& vecs = gen.value().eigenvectors;
  const std::size_t n = lambda.size();
  if (count > n) {
    return Status::InvalidArgument("requested more eigenvectors than order");
  }

  double max_abs = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(lambda[i]));
  }
  const double cutoff = zero_tol * std::max(max_abs, 1e-300);

  // Prefer the smallest eigenvalues strictly above the zero cutoff;
  // pad with near-zero ones if the spectrum does not have enough.
  std::vector<std::size_t> nonzero;
  std::vector<std::size_t> zeroish;
  for (std::size_t i = 0; i < n; ++i) {
    if (lambda[i] > cutoff) {
      nonzero.push_back(i);
    } else {
      zeroish.push_back(i);
    }
  }
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < nonzero.size() && chosen.size() < count; ++i) {
    chosen.push_back(nonzero[i]);
  }
  for (std::size_t i = zeroish.size(); i > 0 && chosen.size() < count; --i) {
    chosen.push_back(zeroish[i - 1]);
  }

  Matrix out(vecs.rows(), count);
  for (std::size_t j = 0; j < chosen.size(); ++j) {
    out.SetCol(j, vecs.Col(chosen[j]));
  }
  return out;
}

}  // namespace slampred
