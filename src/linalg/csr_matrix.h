// Compressed sparse row matrix — the default representation for the
// pipeline's data matrices: the social adjacency Aᵗ, the intimacy
// feature slices, the attribute profiles, and the link-instance
// indicator matrices W_A / W_S / W_D. Only the solver iterate S and the
// SVD factors stay dense (see DESIGN.md "Sparse data path").
//
// Every kernel that can run in parallel goes through the deterministic
// ParallelFor, and the accumulation order of each output element is the
// same as the dense reference kernel's (k ascending, zero terms skipped
// — an exact no-op for the sums involved), so sparse results match the
// dense path bit for bit.

#ifndef SLAMPRED_LINALG_CSR_MATRIX_H_
#define SLAMPRED_LINALG_CSR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// Coordinate-format triplet used to assemble CSR matrices.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR sparse matrix.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed and
  /// exact zeros are dropped.
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= drop_tol.
  static CsrMatrix FromDense(const Matrix& dense, double drop_tol = 0.0);

  /// Builds a 0/1 matrix directly from per-row sorted index lists (the
  /// adjacency-list layout of SocialGraph / HeterogeneousNetwork) in
  /// O(nnz), without a triplet sort.
  static CsrMatrix FromSortedLists(
      const std::vector<std::vector<std::size_t>>& lists, std::size_t cols);

  /// Sparse identity of order n.
  static CsrMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Value at (i, j); O(log nnz(row i)).
  double At(std::size_t i, std::size_t j) const;

  /// y = A x.
  Vector Multiply(const Vector& x) const;

  /// y = Aᵀ x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// C = A B with dense B (rows() x b.cols() dense result). Rows are
  /// processed in parallel (one writing chunk per output row); within a
  /// row the stored entries stream in ascending column order, matching
  /// the dense GEMM kernel's k order with its zero-skip, so the result
  /// is bit-identical to ToDense() * b.
  Matrix MultiplyDense(const Matrix& b) const;

  /// C = Aᵀ B with dense B.
  Matrix MultiplyTransposeDense(const Matrix& b) const;

  /// C = A B with sparse B (row-gather SpGEMM). Per output element the
  /// inner index k runs strictly ascending and zero products are
  /// skipped — the same accumulation order as the dense GEMM kernel, so
  /// ToDense() of the result equals the dense product (computed exact
  /// zeros are dropped, like FromDense).
  CsrMatrix MultiplySparse(const CsrMatrix& b) const;

  /// Row sums (the degree vector of an adjacency-like matrix).
  Vector RowSums() const;

  /// Densifies (intended for tests / small matrices).
  Matrix ToDense() const;

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// Scales all stored values by `factor`.
  CsrMatrix Scaled(double factor) const;

  /// Entry-wise sum A + B (shapes must match).
  CsrMatrix Add(const CsrMatrix& other) const;

  /// Copy with the diagonal entries removed (feature maps zero the
  /// self-pair diagonal).
  CsrMatrix WithoutDiagonal() const;

  /// Entry-wise A + factor · B via a sorted row merge. Values combine
  /// as a + factor * b with absent entries contributing exact zeros, so
  /// the result matches the dense expression entry for entry.
  CsrMatrix AddScaled(const CsrMatrix& other, double factor) const;

  /// Entry-wise (Hadamard) product A ∘ B; the pattern is the
  /// intersection of both patterns.
  CsrMatrix Hadamard(const CsrMatrix& other) const;

  /// Masked read: gathers `dense` at this matrix's sparsity pattern and
  /// multiplies entry-wise (the ‖S ∘ X‖-style product with dense S).
  CsrMatrix HadamardDense(const Matrix& dense) const;

  /// Sum of all stored values.
  double Sum() const;

  /// Σ |v| over stored values (equals the dense ℓ₁ norm).
  double NormL1() const;

  /// √(Σ v²) over stored values (equals the dense Frobenius norm).
  double NormFrobenius() const;

  /// Largest |v| over stored values (0 for an empty matrix).
  double MaxAbs() const;

  /// Heap bytes held by the CSR arrays (row_ptr + col_idx + values) —
  /// the memory-stats counter surfaced by FitMemoryStats.
  std::size_t EstimatedBytes() const;

  /// CSR internals (exposed for iteration by the Laplacian builder).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Appends shape + CSR arrays to `writer` (binary_io layout).
  void Serialize(BinaryWriter& writer) const;

  /// Reads a matrix written by Serialize. The CSR invariants (row_ptr
  /// monotone from 0 to nnz, column indices in range and ascending per
  /// row) are re-validated so a corrupt payload yields an
  /// offset-diagnosed kIoError instead of a matrix that reads out of
  /// bounds later.
  static Result<CsrMatrix> Deserialize(BinaryReader& reader);

  /// One (col, value) entry of a row under assembly.
  using RowEntry = std::pair<std::size_t, double>;

  /// O(nnz) assembly from per-row entry lists. Each list must be sorted
  /// by column with no duplicates; exact zeros are dropped. This is the
  /// fast path for kernels that emit whole rows in parallel.
  static CsrMatrix FromRows(std::size_t cols,
                            std::vector<std::vector<RowEntry>> rows);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Incremental triplet collector — the builder convenience for code that
/// discovers entries in arbitrary order (duplicates are summed, exact
/// zeros dropped, like FromTriplets).
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols) {}

  void Reserve(std::size_t nnz) { triplets_.reserve(nnz); }
  void Add(std::size_t row, std::size_t col, double value) {
    triplets_.push_back({row, col, value});
  }
  std::size_t size() const { return triplets_.size(); }

  /// Consumes the collected triplets.
  CsrMatrix Build() {
    return CsrMatrix::FromTriplets(rows_, cols_, std::move(triplets_));
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace slampred

#endif  // SLAMPRED_LINALG_CSR_MATRIX_H_
