// Compressed sparse row matrix for the big, sparse link-instance
// indicator matrices W_A / W_S / W_D and their Laplacian products. The
// embedding step multiplies these against the block-diagonal feature
// matrix Z, which is far cheaper in CSR than dense.

#ifndef SLAMPRED_LINALG_CSR_MATRIX_H_
#define SLAMPRED_LINALG_CSR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace slampred {

/// Coordinate-format triplet used to assemble CSR matrices.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR sparse matrix.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed and
  /// exact zeros are dropped.
  static CsrMatrix FromTriplets(std::size_t rows, std::size_t cols,
                                std::vector<Triplet> triplets);

  /// Converts a dense matrix, dropping entries with |v| <= drop_tol.
  static CsrMatrix FromDense(const Matrix& dense, double drop_tol = 0.0);

  /// Sparse identity of order n.
  static CsrMatrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// Value at (i, j); O(log nnz(row i)).
  double At(std::size_t i, std::size_t j) const;

  /// y = A x.
  Vector Multiply(const Vector& x) const;

  /// y = Aᵀ x.
  Vector MultiplyTranspose(const Vector& x) const;

  /// C = A B with dense B (rows() x b.cols() dense result).
  Matrix MultiplyDense(const Matrix& b) const;

  /// C = Aᵀ B with dense B.
  Matrix MultiplyTransposeDense(const Matrix& b) const;

  /// Row sums (the degree vector of an adjacency-like matrix).
  Vector RowSums() const;

  /// Densifies (intended for tests / small matrices).
  Matrix ToDense() const;

  /// Transposed copy.
  CsrMatrix Transposed() const;

  /// Scales all stored values by `factor`.
  CsrMatrix Scaled(double factor) const;

  /// Entry-wise sum A + B (shapes must match).
  CsrMatrix Add(const CsrMatrix& other) const;

  /// Sum of all stored values.
  double Sum() const;

  /// CSR internals (exposed for iteration by the Laplacian builder).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace slampred

#endif  // SLAMPRED_LINALG_CSR_MATRIX_H_
