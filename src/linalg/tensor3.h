// Dense 3-way tensor, used for the per-network intimacy feature tensors
// X^k ∈ R^{d x n x n} of the paper (slice(k) = the k-th feature map over
// all user pairs).

#ifndef SLAMPRED_LINALG_TENSOR3_H_
#define SLAMPRED_LINALG_TENSOR3_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace slampred {

/// Dense 3-way tensor of shape (dim0, dim1, dim2), stored contiguously.
/// Indexing follows the paper: T(k, i, j) is entry (i, j) of the k-th
/// slice along the first dimension.
class Tensor3 {
 public:
  Tensor3() = default;

  /// Zero tensor of the given shape.
  Tensor3(std::size_t dim0, std::size_t dim1, std::size_t dim2);

  std::size_t dim0() const { return dim0_; }
  std::size_t dim1() const { return dim1_; }
  std::size_t dim2() const { return dim2_; }
  bool empty() const { return dim0_ == 0 || dim1_ == 0 || dim2_ == 0; }

  /// Unchecked element access.
  double operator()(std::size_t k, std::size_t i, std::size_t j) const {
    return data_[(k * dim1_ + i) * dim2_ + j];
  }
  double& operator()(std::size_t k, std::size_t i, std::size_t j) {
    return data_[(k * dim1_ + i) * dim2_ + j];
  }

  /// Bounds-checked access.
  double At(std::size_t k, std::size_t i, std::size_t j) const;

  /// Copies out the k-th slice along dim0 (a dim1 x dim2 matrix) —
  /// the paper's X(k, :, :).
  Matrix Slice(std::size_t k) const;

  /// Overwrites the k-th slice along dim0.
  void SetSlice(std::size_t k, const Matrix& slice);

  /// Copies out the fibre T(:, i, j) — the paper's X(i, j, :) feature
  /// vector for user pair (i, j) (length dim0).
  Vector Fiber(std::size_t i, std::size_t j) const;

  /// Overwrites the fibre T(:, i, j).
  void SetFiber(std::size_t i, std::size_t j, const Vector& fiber);

  /// Sum of all slices along dim0 (a dim1 x dim2 matrix). This is the
  /// Σ_c X̂(c,:,:) term of the CCCP constant gradient.
  Matrix SumSlices() const;

  /// Applies min-max scaling per slice so every slice lies in [0, 1].
  /// Constant slices map to all-zero.
  void NormalizeSlicesMinMax();

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Raw storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

 private:
  std::size_t dim0_ = 0;
  std::size_t dim1_ = 0;
  std::size_t dim2_ = 0;
  std::vector<double> data_;
};

}  // namespace slampred

#endif  // SLAMPRED_LINALG_TENSOR3_H_
