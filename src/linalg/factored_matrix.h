// Factored low-rank matrix S = U·Vᵀ — the iterate representation of the
// factored solver backend (optim/factored_solver.h).
//
// The dense solver carries the n×n predictor matrix S explicitly, which
// caps it at the sizes a dense Jacobi SVD can chew through. A factored
// iterate stores only the two n×r factors (r ≪ n), so every per-entry
// quantity the solver needs — norms, inner products, distances — is
// computed through r×r Gram matrices in O(n·r²) without ever
// materialising S. Densification (ToDense) exists for serving and for
// the equivalence tests against the dense oracle; the solve path never
// calls it.
//
// All kernels follow the library's determinism contract: chunk
// geometry depends only on the problem shape, every output element is
// written by exactly one chunk (or reduced in chunk order), so results
// are bit-identical for every thread count.

#ifndef SLAMPRED_LINALG_FACTORED_MATRIX_H_
#define SLAMPRED_LINALG_FACTORED_MATRIX_H_

#include <cstddef>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// Low-rank matrix held as S = U·Vᵀ with U (m×r) and V (n×r). An empty
/// pair of factors represents the 0×0 matrix; rank-0 factors (r = 0)
/// represent an exact zero matrix of shape m×n.
class FactoredMatrix {
 public:
  FactoredMatrix() = default;

  /// Wraps the factor pair; u.cols() must equal v.cols().
  FactoredMatrix(Matrix u, Matrix v);

  /// The exact zero matrix of shape rows×cols (rank-0 factors).
  static FactoredMatrix Zero(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  /// Number of factor columns (an upper bound on the true rank).
  std::size_t rank() const { return u_.cols(); }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  const Matrix& u() const { return u_; }
  const Matrix& v() const { return v_; }

  /// Entry (i, j) = Σ_r U(i,r)·V(j,r); O(rank) per call.
  double At(std::size_t i, std::size_t j) const;

  /// Materialises U·Vᵀ (row-parallel, deterministic). O(m·n·r) time and
  /// O(m·n) memory — serving/test path only.
  Matrix ToDense() const;

  /// (U·Vᵀ)·b via U·(Vᵀb); O((m+n)·r·b.cols()) — never m·n.
  Matrix MultiplyDense(const Matrix& b) const;

  /// (U·Vᵀ)ᵀ·b = V·(Uᵀb).
  Matrix MultiplyTransposeDense(const Matrix& b) const;

  /// Scales the represented matrix by `factor` (absorbed into U).
  FactoredMatrix Scaled(double factor) const;

  /// (S + Sᵀ)/2 without densifying: U' = [U/2 | V/2], V' = [V | U].
  /// The factor count doubles; the next nuclear prox re-truncates it.
  FactoredMatrix Symmetrized() const;

  /// ‖S‖_F through the r×r Gram trick: ‖UVᵀ‖²_F = tr((UᵀU)(VᵀV)).
  double FrobeniusNorm() const;

  /// ‖this − other‖_F via the polarisation identity on Gram inner
  /// products (clamped at 0 against cancellation). Shapes must match.
  double DistanceFrobenius(const FactoredMatrix& other) const;

  /// Σ_{stored (i,j) of a} a_ij · S_ij — the O(nnz·r) contraction the
  /// factored objective evaluation is built on. Shapes must match.
  double InnerProductCsr(const CsrMatrix& a) const;

  /// Entry-wise ℓ₁ norm. O(m·n·r) — diagnostics only, never in the
  /// solve loop.
  double NormL1() const;

  /// Singular values of U·Vᵀ (descending, length rank()) via thin QR on
  /// both factors and an SVD of the small r×r core — O((m+n)·r²).
  Result<Vector> SingularValues() const;

  /// Heap bytes of the two factors.
  std::size_t EstimatedBytes() const;

  /// True iff every factor entry is finite.
  bool IsFinite() const;

  /// Appends both factors to `writer` (binary_io layout: U then V).
  void Serialize(BinaryWriter& writer) const;

  /// Reads a pair written by Serialize; rejects mismatched factor
  /// column counts with a diagnosed kIoError.
  static Result<FactoredMatrix> Deserialize(BinaryReader& reader);

  bool operator==(const FactoredMatrix& other) const {
    return u_ == other.u_ && v_ == other.v_;
  }

 private:
  Matrix u_;  // m × r.
  Matrix v_;  // n × r.
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// ⟨A, B⟩_F = tr((UₐᵀU_b)(V_bᵀVₐ)) for two factored matrices of the
/// same shape — O((m+n)·rₐ·r_b).
double InnerProduct(const FactoredMatrix& a, const FactoredMatrix& b);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_FACTORED_MATRIX_H_
