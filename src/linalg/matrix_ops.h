// Free-function matrix operations beyond Matrix's own members: Gram
// products, rank estimation, positive-part / sign transforms, and the
// small helpers the optimizer and embedding modules share.

#ifndef SLAMPRED_LINALG_MATRIX_OPS_H_
#define SLAMPRED_LINALG_MATRIX_OPS_H_

#include "linalg/matrix.h"
#include "util/status.h"

namespace slampred {

/// Computes AᵀA (cols x cols Gram matrix) without forming Aᵀ.
Matrix GramAtA(const Matrix& a);

/// Computes AAᵀ (rows x rows Gram matrix).
Matrix GramAAt(const Matrix& a);

/// Computes A·Bᵀ without materialising Bᵀ; requires a.cols()==b.cols().
Matrix MultiplyABt(const Matrix& a, const Matrix& b);

/// Computes Aᵀ·B without materialising Aᵀ; requires a.rows()==b.rows().
Matrix MultiplyAtB(const Matrix& a, const Matrix& b);

/// Entry-wise positive part (X)₊ = max(X, 0).
Matrix PositivePart(const Matrix& m);

/// Entry-wise sign matrix with sgn(0) = 0.
Matrix SignMatrix(const Matrix& m);

/// Entry-wise absolute value |X|.
Matrix AbsMatrix(const Matrix& m);

/// Numerical rank: number of singular values > tol * max singular value.
/// Returns an error if the SVD fails.
Result<std::size_t> NumericalRank(const Matrix& m, double tol = 1e-9);

/// Sum of singular values ‖X‖_* (via SVD).
Result<double> NuclearNorm(const Matrix& m);

/// Spectral norm (largest singular value) via power iteration on XᵀX;
/// cheap and sufficient for step-size selection.
double SpectralNormEstimate(const Matrix& m, int iterations = 50);

/// Max-abs relative difference ‖A−B‖_max / max(1, ‖A‖_max).
double RelativeMaxDiff(const Matrix& a, const Matrix& b);

/// Clamps every entry into [lo, hi].
Matrix Clamp(const Matrix& m, double lo, double hi);

/// Zeroes the main diagonal (square matrices; used for predictor matrices
/// where self-links are meaningless).
Matrix ZeroDiagonal(const Matrix& m);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_MATRIX_OPS_H_
