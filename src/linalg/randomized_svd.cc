#include "linalg/randomized_svd.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace slampred {

Result<SvdResult> ComputeRandomizedSvd(const Matrix& a,
                                       const RandomizedSvdOptions& options) {
  // Outermost scope: the nested ComputeSvd of the sketch counts once.
  SvdTimerScope svd_timer;
  if (a.empty()) {
    return Status::InvalidArgument("randomized SVD of empty matrix");
  }
  if (options.rank == 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  // Fail fast on poisoned input: the sketch would only smear the NaNs.
  for (double v : a.data()) {
    if (!std::isfinite(v)) {
      return Status::NumericalError(
          "randomized SVD input contains non-finite entries");
    }
  }
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(options.rank, std::min(m, n));
  const std::size_t sketch =
      std::min(k + options.oversampling, std::min(m, n));

  // Stage A: find an orthonormal basis Q for the range of A.
  Rng rng(options.seed);
  Matrix omega = Matrix::RandomGaussian(n, sketch, rng);
  Matrix y = a * omega;                       // m x sketch.
  Matrix q = OrthonormalizeColumns(y);
  for (int it = 0; it < options.power_iterations; ++it) {
    // Subspace iteration: Q <- orth(A Aᵀ Q), re-orthonormalising at each
    // half-step for numerical stability.
    Matrix z = MultiplyAtB(a, q);             // n x sketch.
    z = OrthonormalizeColumns(z);
    q = OrthonormalizeColumns(a * z);         // m x sketch.
  }
  if (q.cols() == 0) {
    // A is (numerically) zero: return a rank-k zero decomposition.
    SvdResult res;
    res.u = Matrix(m, k);
    res.v = Matrix(n, k);
    res.singular_values = Vector(k, 0.0);
    return res;
  }

  // Stage B: SVD of the small projected matrix B = Qᵀ A (sketch x n).
  Matrix b = MultiplyAtB(q, a);
  auto small_svd = ComputeSvd(b);
  if (!small_svd.ok()) return small_svd.status();
  const SvdResult& dec = small_svd.value();

  const std::size_t keep = std::min<std::size_t>(k, dec.singular_values.size());
  SvdResult res;
  res.u = Matrix(m, keep);
  res.v = Matrix(n, keep);
  res.singular_values = Vector(keep);
  for (std::size_t r = 0; r < keep; ++r) {
    res.singular_values[r] = dec.singular_values[r];
    for (std::size_t j = 0; j < n; ++j) res.v(j, r) = dec.v(j, r);
  }
  // U = Q · U_small, row-parallel (c ascends per element, one writing
  // chunk per row of U — bit-identical for any thread count).
  const std::size_t qc = q.cols();
  ParallelFor(0, m, GrainForWork(keep * qc),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t r = 0; r < keep; ++r) {
                    double sum = 0.0;
                    for (std::size_t c = 0; c < qc; ++c) {
                      sum += q(i, c) * dec.u(c, r);
                    }
                    res.u(i, r) = sum;
                  }
                }
              });
  return res;
}

Result<Matrix> ProxNuclearRandomized(const Matrix& s, double threshold,
                                     const RandomizedSvdOptions& options) {
  if (threshold < 0.0) {
    return Status::InvalidArgument("negative nuclear threshold");
  }
  // Shares the "svd.prox" injection site with the exact prox backends
  // (proximal.cc) — the fallback chain in optim/guardrails.cc must see
  // the same fault regardless of which primary backend is active.
  switch (SLAMPRED_FAULT_HIT("svd.prox")) {
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected fault at svd.prox");
    case FaultKind::kFailNumerical:
    case FaultKind::kFailIo:
      return Status::NumericalError("injected fault at svd.prox");
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf: {
      Matrix poisoned(s.rows(), s.cols(),
                      std::numeric_limits<double>::quiet_NaN());
      return poisoned;
    }
    case FaultKind::kNone:
      break;
  }
  auto svd = ComputeRandomizedSvd(s, options);
  if (!svd.ok()) return svd.status();
  const SvdResult& dec = svd.value();

  // Ranks surviving the shrinkage (sorted descending → prefix).
  std::size_t keep = 0;
  std::vector<double> shrunk(dec.singular_values.size(), 0.0);
  for (std::size_t r = 0; r < dec.singular_values.size(); ++r) {
    shrunk[r] = dec.singular_values[r] - threshold;
    if (shrunk[r] <= 0.0) break;
    ++keep;
  }

  Matrix out(s.rows(), s.cols());
  const std::size_t ncols = s.cols();
  // Row-parallel reconstruction; r ascends per element, exactly as the
  // serial rank-1 accumulation did.
  ParallelFor(0, s.rows(), GrainForWork(keep * ncols),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t r = 0; r < keep; ++r) {
                    const double ui = dec.u(i, r) * shrunk[r];
                    if (ui == 0.0) continue;
                    for (std::size_t j = 0; j < ncols; ++j) {
                      out(i, j) += ui * dec.v(j, r);
                    }
                  }
                }
              });
  return out;
}

}  // namespace slampred
