// Dense row-major double-precision matrix.

#ifndef SLAMPRED_LINALG_MATRIX_H_
#define SLAMPRED_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// Dense row-major matrix of doubles. The workhorse type of the library:
/// adjacency matrices, predictor matrices, feature slices, Laplacians and
/// factorisations all use it.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero matrix of shape rows x cols.
  Matrix(std::size_t rows, std::size_t cols);

  /// Constant matrix of shape rows x cols filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value);

  /// Matrix from nested initializer lists (rows of equal length), e.g.
  /// Matrix{{1, 2}, {3, 4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of order n.
  static Matrix Identity(std::size_t n);

  /// Diagonal matrix with `diag` on the diagonal.
  static Matrix Diagonal(const Vector& diag);

  /// Matrix with i.i.d. N(0,1) entries drawn from `rng`.
  static Matrix RandomGaussian(std::size_t rows, std::size_t cols,
                               class Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool IsSquare() const { return rows_ == cols_; }

  /// Unchecked element access.
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }
  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access (aborts on violation).
  double At(std::size_t i, std::size_t j) const;
  void Set(std::size_t i, std::size_t j, double value);

  /// Raw row-major storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Copies out row i / column j.
  Vector Row(std::size_t i) const;
  Vector Col(std::size_t j) const;

  /// Overwrites row i / column j. Dimension must match.
  void SetRow(std::size_t i, const Vector& row);
  void SetCol(std::size_t j, const Vector& col);

  /// Copy of the main diagonal (length min(rows, cols)).
  Vector Diag() const;

  /// In-place arithmetic. Shapes must match.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double scalar) const;

  /// Matrix product; this->cols() must equal other.rows().
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product; cols() must equal v.size().
  Vector operator*(const Vector& v) const;

  /// Transpose copy.
  Matrix Transposed() const;

  /// Element-wise (Hadamard) product. Shapes must match.
  Matrix Hadamard(const Matrix& other) const;

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Entry-wise l1 norm (sum of absolute values).
  double NormL1() const;

  /// Largest absolute entry.
  double MaxAbs() const;

  /// Sum of all entries.
  double Sum() const;

  /// Trace; requires a square matrix.
  double Trace() const;

  /// True iff |(i,j) - (j,i)| <= tol for all entries (square only).
  bool IsSymmetric(double tol = 1e-10) const;

  /// Returns (A + Aᵀ)/2; requires a square matrix.
  Matrix Symmetrized() const;

  /// Copies the rectangular block starting at (row0, col0).
  Matrix Block(std::size_t row0, std::size_t col0, std::size_t n_rows,
               std::size_t n_cols) const;

  /// Writes `block` at offset (row0, col0); must fit.
  void SetBlock(std::size_t row0, std::size_t col0, const Matrix& block);

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Sets every entry with |entry| < tol to exactly zero and returns the
  /// number of zeroed entries.
  std::size_t ZeroSmallEntries(double tol);

  /// Fraction of exactly-zero entries (1.0 for the empty matrix).
  double Sparsity() const;

  /// Human-readable rendering (intended for small matrices).
  std::string ToString(int precision = 3) const;

  /// Appends shape + row-major payload to `writer` (binary_io layout).
  void Serialize(BinaryWriter& writer) const;

  /// Reads a matrix written by Serialize. Fails with an offset-diagnosed
  /// kIoError on truncation or an implausible shape (rows·cols
  /// overflowing or exceeding the remaining bytes).
  static Result<Matrix> Deserialize(BinaryReader& reader);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Scalar * matrix.
Matrix operator*(double scalar, const Matrix& m);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_MATRIX_H_
