// Generalized symmetric-definite eigenproblem A x = λ B x.
//
// This is the solver behind the paper's Theorem 1: the optimal projection
// matrix F is formed from the eigenvectors of Z(μL_A + L_S)Zᵀ x =
// λ Z L_D Zᵀ x belonging to the smallest non-zero eigenvalues. B built
// from a graph Laplacian is only positive *semi*-definite, so a caller-
// controlled ridge εI is added before the Cholesky reduction.

#ifndef SLAMPRED_LINALG_GENERALIZED_EIGEN_H_
#define SLAMPRED_LINALG_GENERALIZED_EIGEN_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Eigenpairs of A x = λ B x, sorted ascending by eigenvalue. Vectors are
/// B-orthonormal: XᵀB X = I.
struct GeneralizedEigenResult {
  Vector eigenvalues;   ///< Ascending.
  Matrix eigenvectors;  ///< Column j pairs with eigenvalues[j].
};

/// Options for the reduction.
struct GeneralizedEigenOptions {
  /// Ridge added to B (times its mean diagonal) to guarantee positive
  /// definiteness when B is a singular Laplacian product.
  double ridge = 1e-8;
  /// Retries with a 100x larger ridge if Cholesky still fails.
  int max_ridge_retries = 6;
};

/// Solves the symmetric-definite problem by Cholesky reduction:
/// B+εI = L Lᵀ, C = L⁻¹ A L⁻ᵀ (symmetric), Jacobi-eigen of C, and back-
/// substitution of the vectors. Requires A symmetric and B symmetric
/// PSD of the same order.
Result<GeneralizedEigenResult> ComputeGeneralizedEigen(
    const Matrix& a, const Matrix& b,
    const GeneralizedEigenOptions& options = {});

/// Convenience for Theorem 1: returns the `count` eigenvectors whose
/// eigenvalues are the smallest ones strictly greater than
/// `zero_tol * max|λ|` (i.e. "smallest non-zero eigenvalues"). If fewer
/// than `count` qualify, the result is padded with the smallest
/// remaining vectors so callers always get `count` columns.
Result<Matrix> SmallestNonZeroEigenvectors(const Matrix& a, const Matrix& b,
                                           std::size_t count,
                                           double zero_tol = 1e-8);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_GENERALIZED_EIGEN_H_
