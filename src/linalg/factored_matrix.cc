#include "linalg/factored_matrix.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "linalg/svd.h"
#include "util/binary_io.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

FactoredMatrix::FactoredMatrix(Matrix u, Matrix v)
    : u_(std::move(u)), v_(std::move(v)) {
  SLAMPRED_CHECK(u_.cols() == v_.cols())
      << "factor column counts must match: " << u_.cols() << " vs "
      << v_.cols();
  rows_ = u_.rows();
  cols_ = v_.rows();
}

FactoredMatrix FactoredMatrix::Zero(std::size_t rows, std::size_t cols) {
  FactoredMatrix zero;
  zero.u_ = Matrix(rows, 0);
  zero.v_ = Matrix(cols, 0);
  zero.rows_ = rows;
  zero.cols_ = cols;
  return zero;
}

double FactoredMatrix::At(std::size_t i, std::size_t j) const {
  SLAMPRED_CHECK(i < rows_ && j < cols_) << "factored index out of range";
  double sum = 0.0;
  const std::size_t r = rank();
  for (std::size_t c = 0; c < r; ++c) sum += u_(i, c) * v_(j, c);
  return sum;
}

Matrix FactoredMatrix::ToDense() const {
  if (rank() == 0) return Matrix(rows_, cols_);
  return MultiplyABt(u_, v_);
}

Matrix FactoredMatrix::MultiplyDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == cols_) << "factored multiply shape mismatch";
  if (rank() == 0) return Matrix(rows_, b.cols());
  return u_ * MultiplyAtB(v_, b);
}

Matrix FactoredMatrix::MultiplyTransposeDense(const Matrix& b) const {
  SLAMPRED_CHECK(b.rows() == rows_) << "factored multiply shape mismatch";
  if (rank() == 0) return Matrix(cols_, b.cols());
  return v_ * MultiplyAtB(u_, b);
}

FactoredMatrix FactoredMatrix::Scaled(double factor) const {
  return FactoredMatrix(u_ * factor, v_);
}

FactoredMatrix FactoredMatrix::Symmetrized() const {
  SLAMPRED_CHECK(rows_ == cols_) << "symmetrize needs a square matrix";
  const std::size_t r = rank();
  Matrix su(rows_, 2 * r);
  Matrix sv(rows_, 2 * r);
  su.SetBlock(0, 0, u_ * 0.5);
  su.SetBlock(0, r, v_ * 0.5);
  sv.SetBlock(0, 0, v_);
  sv.SetBlock(0, r, u_);
  return FactoredMatrix(std::move(su), std::move(sv));
}

double FactoredMatrix::FrobeniusNorm() const {
  return std::sqrt(std::max(0.0, InnerProduct(*this, *this)));
}

double FactoredMatrix::DistanceFrobenius(const FactoredMatrix& other) const {
  SLAMPRED_CHECK(rows_ == other.rows_ && cols_ == other.cols_)
      << "factored distance shape mismatch";
  const double aa = InnerProduct(*this, *this);
  const double bb = InnerProduct(other, other);
  const double ab = InnerProduct(*this, other);
  return std::sqrt(std::max(0.0, aa - 2.0 * ab + bb));
}

double FactoredMatrix::InnerProductCsr(const CsrMatrix& a) const {
  SLAMPRED_CHECK(a.rows() == rows_ && a.cols() == cols_)
      << "factored/CSR inner product shape mismatch";
  const std::size_t r = rank();
  if (r == 0 || a.nnz() == 0) return 0.0;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t avg_nnz = std::max<std::size_t>(1, a.nnz() / rows_);
  return ParallelReduceSum(
      0, rows_, GrainForWork(avg_nnz * r),
      [&](std::size_t row0, std::size_t row1) {
        double sum = 0.0;
        for (std::size_t i = row0; i < row1; ++i) {
          for (std::size_t idx = row_ptr[i]; idx < row_ptr[i + 1]; ++idx) {
            const std::size_t j = col_idx[idx];
            double entry = 0.0;
            for (std::size_t c = 0; c < r; ++c) entry += u_(i, c) * v_(j, c);
            sum += values[idx] * entry;
          }
        }
        return sum;
      });
}

double FactoredMatrix::NormL1() const {
  const std::size_t r = rank();
  if (r == 0) return 0.0;
  return ParallelReduceSum(
      0, rows_, GrainForWork(cols_ * r),
      [&](std::size_t row0, std::size_t row1) {
        double sum = 0.0;
        for (std::size_t i = row0; i < row1; ++i) {
          for (std::size_t j = 0; j < cols_; ++j) {
            double entry = 0.0;
            for (std::size_t c = 0; c < r; ++c) entry += u_(i, c) * v_(j, c);
            sum += std::abs(entry);
          }
        }
        return sum;
      });
}

Result<Vector> FactoredMatrix::SingularValues() const {
  const std::size_t r = rank();
  if (r == 0) return Vector();
  if (r > rows_ || r > cols_) {
    // More factor columns than matrix rows: the thin QR route needs
    // tall factors, so fall back to an SVD of the (small) dense form.
    auto svd = ComputeSvd(ToDense());
    if (!svd.ok()) return svd.status();
    return svd.value().singular_values;
  }
  auto qr_u = ComputeQr(u_);
  if (!qr_u.ok()) return qr_u.status();
  auto qr_v = ComputeQr(v_);
  if (!qr_v.ok()) return qr_v.status();
  // U·Vᵀ = Q_u (R_u R_vᵀ) Q_vᵀ — the r×r core carries the spectrum.
  auto core_svd = ComputeSvd(MultiplyABt(qr_u.value().r, qr_v.value().r));
  if (!core_svd.ok()) return core_svd.status();
  return core_svd.value().singular_values;
}

std::size_t FactoredMatrix::EstimatedBytes() const {
  return (u_.data().size() + v_.data().size()) * sizeof(double);
}

bool FactoredMatrix::IsFinite() const {
  for (double x : u_.data()) {
    if (!std::isfinite(x)) return false;
  }
  for (double x : v_.data()) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

void FactoredMatrix::Serialize(BinaryWriter& writer) const {
  u_.Serialize(writer);
  v_.Serialize(writer);
}

Result<FactoredMatrix> FactoredMatrix::Deserialize(BinaryReader& reader) {
  auto u = Matrix::Deserialize(reader);
  if (!u.ok()) return u.status();
  const std::size_t v_offset = reader.offset();
  auto v = Matrix::Deserialize(reader);
  if (!v.ok()) return v.status();
  if (u.value().cols() != v.value().cols()) {
    return Status::IoError(
        "factored matrix with mismatched factor ranks " +
        std::to_string(u.value().cols()) + " vs " +
        std::to_string(v.value().cols()) + " at offset " +
        std::to_string(v_offset));
  }
  return FactoredMatrix(std::move(u).value(), std::move(v).value());
}

double InnerProduct(const FactoredMatrix& a, const FactoredMatrix& b) {
  SLAMPRED_CHECK(a.rows() == b.rows() && a.cols() == b.cols())
      << "factored inner product shape mismatch";
  if (a.rank() == 0 || b.rank() == 0) return 0.0;
  // ⟨UₐVₐᵀ, U_bV_bᵀ⟩ = tr((UₐᵀU_b)(V_bᵀVₐ)); both Grams are r×r.
  const Matrix uab = MultiplyAtB(a.u(), b.u());
  const Matrix vba = MultiplyAtB(b.v(), a.v());
  double sum = 0.0;
  for (std::size_t i = 0; i < uab.rows(); ++i) {
    for (std::size_t j = 0; j < uab.cols(); ++j) {
      sum += uab(i, j) * vba(j, i);
    }
  }
  return sum;
}

}  // namespace slampred
