// Randomized truncated SVD (Halko–Martinsson–Tropp range finder).
//
// The nuclear-norm prox only needs the singular values above the
// shrinkage threshold; when the iterate is near low-rank — which the
// nuclear regularizer itself enforces as CCCP progresses — a rank-k
// randomized sketch is much cheaper than a full Jacobi decomposition:
// O(n² k) instead of O(n³) per call. This powers the scalable prox
// variant for networks beyond the dense-Jacobi comfort zone.

#ifndef SLAMPRED_LINALG_RANDOMIZED_SVD_H_
#define SLAMPRED_LINALG_RANDOMIZED_SVD_H_

#include "linalg/svd.h"
#include "util/random.h"
#include "util/status.h"

namespace slampred {

/// Controls for the randomized range finder.
struct RandomizedSvdOptions {
  std::size_t rank = 10;          ///< Target rank k.
  std::size_t oversampling = 8;   ///< Extra sketch columns (p).
  int power_iterations = 2;       ///< Subspace iterations (q) for accuracy.
  std::uint64_t seed = 0x5eedULL; ///< Sketch seed (deterministic).
};

/// Computes an approximate rank-k SVD of `a` (m x n): U is m x k, V is
/// n x k, singular_values has length k (descending). The approximation
/// error is near-optimal when the spectrum decays past rank k. Fails on
/// empty input or rank 0.
Result<SvdResult> ComputeRandomizedSvd(const Matrix& a,
                                       const RandomizedSvdOptions& options);

/// Nuclear-norm prox using the randomized sketch: shrinks the top-k
/// singular values by `threshold` and drops the (unsketched) tail. This
/// is exact when rank(prox result) <= k — i.e. when the shrinkage
/// truncates the spectrum inside the sketch — and an approximation
/// otherwise; callers pick `rank` from the expected rank of S.
Result<Matrix> ProxNuclearRandomized(const Matrix& s, double threshold,
                                     const RandomizedSvdOptions& options);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_RANDOMIZED_SVD_H_
