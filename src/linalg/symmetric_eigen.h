// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Used for (a) the fast symmetric path of the nuclear-norm prox (the
// predictor matrix S stays symmetric for undirected social graphs) and
// (b) the reduced standard problem inside the generalized eigensolver
// that implements the paper's Theorem 1.

#ifndef SLAMPRED_LINALG_SYMMETRIC_EIGEN_H_
#define SLAMPRED_LINALG_SYMMETRIC_EIGEN_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Eigendecomposition A = Q Λ Qᵀ with eigenvalues sorted ascending.
struct SymmetricEigenResult {
  Vector eigenvalues;   ///< λ₁ ≤ λ₂ ≤ ... ≤ λ_n.
  Matrix eigenvectors;  ///< Column j is the eigenvector for eigenvalues[j].

  /// Reconstructs Q Λ Qᵀ (for testing / verification).
  Matrix Reconstruct() const;
};

/// Options controlling the Jacobi iteration.
struct SymmetricEigenOptions {
  int max_sweeps = 100;  ///< Hard cap on full sweeps.
  double tol = 1e-12;    ///< Off-diagonal convergence tolerance (relative).
};

/// Computes the full eigendecomposition of the symmetric matrix `a`.
/// Fails with kInvalidArgument if `a` is empty, non-square, or visibly
/// asymmetric, and kNotConverged if sweeps are exhausted.
Result<SymmetricEigenResult> ComputeSymmetricEigen(
    const Matrix& a, const SymmetricEigenOptions& options = {});

}  // namespace slampred

#endif  // SLAMPRED_LINALG_SYMMETRIC_EIGEN_H_
