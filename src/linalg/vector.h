// Dense double-precision vector.

#ifndef SLAMPRED_LINALG_VECTOR_H_
#define SLAMPRED_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace slampred {

/// Dense column vector of doubles with the arithmetic used by the
/// optimizers and feature extractors.
class Vector {
 public:
  /// Empty vector.
  Vector() = default;

  /// Zero vector of dimension `n`.
  explicit Vector(std::size_t n) : data_(n, 0.0) {}

  /// Constant vector of dimension `n` filled with `value`.
  Vector(std::size_t n, double value) : data_(n, value) {}

  /// Vector from an initializer list, e.g. Vector{1.0, 2.0}.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Vector adopting an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  /// Dimension.
  std::size_t size() const { return data_.size(); }

  /// True iff dimension is zero.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double operator[](std::size_t i) const { return data_[i]; }
  double& operator[](std::size_t i) { return data_[i]; }

  /// Bounds-checked element access (aborts on violation).
  double At(std::size_t i) const;
  void Set(std::size_t i, double value);

  /// Raw storage.
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// In-place arithmetic. Dimensions must match.
  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// Element-wise arithmetic. Dimensions must match.
  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double scalar) const;

  /// Dot product. Dimensions must match.
  double Dot(const Vector& other) const;

  /// Euclidean (l2) norm.
  double Norm() const;

  /// Entry-wise l1 norm.
  double NormL1() const;

  /// Largest absolute entry (0 for the empty vector).
  double NormInf() const;

  /// Sum of entries.
  double Sum() const;

  /// Arithmetic mean (0 for the empty vector).
  double Mean() const;

  /// Element-wise (Hadamard) product. Dimensions must match.
  Vector Hadamard(const Vector& other) const;

  /// Returns a copy scaled to unit l2 norm; zero vectors stay zero.
  Vector Normalized() const;

  /// Appends an element.
  void PushBack(double value) { data_.push_back(value); }

  /// Sets all entries to `value`.
  void Fill(double value);

  /// Human-readable rendering, e.g. "[1.000, 2.000]".
  std::string ToString(int precision = 3) const;

  bool operator==(const Vector& other) const { return data_ == other.data_; }

 private:
  std::vector<double> data_;
};

/// Scalar * vector.
Vector operator*(double scalar, const Vector& v);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_VECTOR_H_
