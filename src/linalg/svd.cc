#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"
#include "util/stopwatch.h"

namespace slampred {

Matrix SvdResult::Reconstruct() const {
  const std::size_t m = u.rows();
  const std::size_t n = v.rows();
  const std::size_t k = singular_values.size();
  Matrix out(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < k; ++r) {
        sum += u(i, r) * singular_values[r] * v(j, r);
      }
      out(i, j) = sum;
    }
  }
  return out;
}

Result<SvdResult> ComputeSvd(const Matrix& a, const SvdOptions& options) {
  SvdTimerScope svd_timer;
  if (a.empty()) {
    return Status::InvalidArgument("SVD of empty matrix");
  }
  // Non-finite input can never orthogonalise; fail fast with a
  // recoverable code instead of burning max_sweeps on NaN rotations.
  for (double v : a.data()) {
    if (!std::isfinite(v)) {
      return Status::NumericalError("SVD input contains non-finite entries");
    }
  }

  // Work on B with rows >= cols; if a is wide, decompose aᵀ and swap U/V.
  const bool transposed = a.rows() < a.cols();
  Matrix b = transposed ? a.Transposed() : a;
  const std::size_t m = b.rows();
  const std::size_t n = b.cols();

  // One-sided Jacobi: rotate column pairs of W (initialised to B) until
  // all pairs are numerically orthogonal. V accumulates the rotations.
  Matrix w = b;
  Matrix v = Matrix::Identity(n);

  const double frob = b.FrobeniusNorm();
  if (frob == 0.0) {
    // All-zero matrix: U/V arbitrary orthonormal, sigma = 0.
    SvdResult res;
    res.singular_values = Vector(n, 0.0);
    res.u = Matrix(m, n);
    for (std::size_t i = 0; i < std::min(m, n); ++i) res.u(i, i) = 1.0;
    res.v = Matrix::Identity(n);
    if (transposed) std::swap(res.u, res.v);
    return res;
  }
  const double threshold = options.tol * frob * frob;

  bool converged = false;
  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    converged = true;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of columns p and q.
        double alpha = 0.0;
        double beta = 0.0;
        double gamma = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::fabs(gamma) <= threshold ||
            std::fabs(gamma) <= options.tol * std::sqrt(alpha * beta)) {
          continue;
        }
        converged = false;

        // Jacobi rotation zeroing the (p,q) Gram entry.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        for (std::size_t i = 0; i < m; ++i) {
          const double wp = w(i, p);
          const double wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NotConverged("one-sided Jacobi SVD did not converge");
  }

  // Column norms of W are the singular values; normalised columns are U.
  Vector sigma(n);
  for (std::size_t j = 0; j < n; ++j) {
    double norm = 0.0;
    for (std::size_t i = 0; i < m; ++i) norm += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(norm);
  }

  // Sort singular values descending, permuting columns of W and V.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  SvdResult res;
  res.singular_values = Vector(n);
  res.u = Matrix(m, n);
  res.v = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    res.singular_values[jj] = sigma[j];
    const double inv = sigma[j] > 1e-300 ? 1.0 / sigma[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) res.u(i, jj) = w(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) res.v(i, jj) = v(i, j);
  }

  if (transposed) std::swap(res.u, res.v);
  return res;
}

}  // namespace slampred
