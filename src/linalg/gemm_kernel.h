// The one blocked GEMM micro-kernel shared by the dense product
// variants (Matrix::operator*, MultiplyAtB, GramAtA). Internal to
// linalg — not part of the public surface.

#ifndef SLAMPRED_LINALG_GEMM_KERNEL_H_
#define SLAMPRED_LINALG_GEMM_KERNEL_H_

#include <algorithm>
#include <cstddef>

namespace slampred {
namespace internal {

/// k-dimension tile size: one tile of the streamed B panel
/// (kGemmKBlock rows of B) stays cache-resident while every output row
/// of the chunk sweeps it.
constexpr std::size_t kGemmKBlock = 128;

/// Accumulates out(i, j) += Σ_k pa(i, k) · b(k, j) for output rows
/// i ∈ [row0, row1) and columns j ∈ [col_begin(i), ncols).
///
/// Contract (load-bearing for the determinism guarantee):
///   - k runs strictly ascending per output element — tiling processes
///     k-blocks in order, so the FP accumulation order never depends on
///     the partitioning and parallel results are bit-identical to
///     serial ones;
///   - zero pa(i, k) entries are skipped (sparse adjacency fast path);
///   - `pa(i, k)` abstracts the left operand (A, or Aᵀ read in place);
///     `b` is row-major inner_dim × ncols; `out` is row-major with
///     stride ncols and absolute row indexing;
///   - `col_begin(i)` is 0 for the full kernel, i for the
///     upper-triangular Gram variant.
template <typename PanelA, typename ColBegin>
inline void GemmAccumulateRows(std::size_t row0, std::size_t row1,
                               std::size_t inner_dim, std::size_t ncols,
                               PanelA pa, const double* b, double* out,
                               ColBegin col_begin) {
  for (std::size_t k0 = 0; k0 < inner_dim; k0 += kGemmKBlock) {
    const std::size_t k1 = std::min(inner_dim, k0 + kGemmKBlock);
    for (std::size_t i = row0; i < row1; ++i) {
      const std::size_t j0 = col_begin(i);
      if (j0 >= ncols) continue;
      double* out_row = out + i * ncols;
      for (std::size_t k = k0; k < k1; ++k) {
        const double aik = pa(i, k);
        if (aik == 0.0) continue;
        const double* b_row = b + k * ncols;
        for (std::size_t j = j0; j < ncols; ++j) {
          out_row[j] += aik * b_row[j];
        }
      }
    }
  }
}

}  // namespace internal
}  // namespace slampred

#endif  // SLAMPRED_LINALG_GEMM_KERNEL_H_
