#include "linalg/vector.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace slampred {

double Vector::At(std::size_t i) const {
  SLAMPRED_CHECK(i < data_.size()) << "vector index " << i << " out of range "
                                   << data_.size();
  return data_[i];
}

void Vector::Set(std::size_t i, double value) {
  SLAMPRED_CHECK(i < data_.size()) << "vector index " << i << " out of range "
                                   << data_.size();
  data_[i] = value;
}

Vector& Vector::operator+=(const Vector& other) {
  SLAMPRED_CHECK(size() == other.size()) << "vector dim mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  SLAMPRED_CHECK(size() == other.size()) << "vector dim mismatch";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  for (double& v : data_) v /= scalar;
  return *this;
}

Vector Vector::operator+(const Vector& other) const {
  Vector out = *this;
  out += other;
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  Vector out = *this;
  out -= other;
  return out;
}

Vector Vector::operator*(double scalar) const {
  Vector out = *this;
  out *= scalar;
  return out;
}

double Vector::Dot(const Vector& other) const {
  SLAMPRED_CHECK(size() == other.size()) << "vector dim mismatch";
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    sum += data_[i] * other.data_[i];
  }
  return sum;
}

double Vector::Norm() const { return std::sqrt(Dot(*this)); }

double Vector::NormL1() const {
  double sum = 0.0;
  for (double v : data_) sum += std::fabs(v);
  return sum;
}

double Vector::NormInf() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double Vector::Sum() const {
  double sum = 0.0;
  for (double v : data_) sum += v;
  return sum;
}

double Vector::Mean() const {
  return data_.empty() ? 0.0 : Sum() / static_cast<double>(data_.size());
}

Vector Vector::Hadamard(const Vector& other) const {
  SLAMPRED_CHECK(size() == other.size()) << "vector dim mismatch";
  Vector out(size());
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] * other.data_[i];
  }
  return out;
}

Vector Vector::Normalized() const {
  const double norm = Norm();
  if (norm <= 0.0) return *this;
  Vector out = *this;
  out /= norm;
  return out;
}

void Vector::Fill(double value) {
  for (double& v : data_) v = value;
}

std::string Vector::ToString(int precision) const {
  std::string out = "[";
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(data_[i], precision);
  }
  out += "]";
  return out;
}

Vector operator*(double scalar, const Vector& v) { return v * scalar; }

}  // namespace slampred
