// Per-row affine quantization of score matrices — the storage layer of
// the quantized serving artifacts (DESIGN.md §15).
//
// Each row is quantized independently: offset = row minimum, scale =
// (row max − row min) / levels (255 for u8, 65535 for u16), and every
// entry stores the nearest code clamp(round((s − offset)/scale)).
// Dequantization is offset + scale·code, so
//
//   * the per-element round-trip error is bounded by scale/2 (up to
//     IEEE-754 rounding slack of a few ulps),
//   * a constant row has scale 0 and round-trips exactly,
//   * code 0 dequantizes to the row offset bit for bit.
//
// Quantization rejects non-finite input with a Status instead of
// encoding garbage, fans rows out over the deterministic ParallelFor
// (each row is written by exactly one chunk, so codes are bit-identical
// for every thread count), and deserialization re-validates the scale
// and offset vectors — a corrupt scale is an offset-diagnosed kIoError,
// never a silent mis-dequantization.
//
// QuantizedSymmetricCsr is the sparse sibling for the boundary CSR of a
// sharded artifact: the matrix must be exactly symmetric, only the
// strict upper triangle is stored on disk (half the entries), and the
// full pattern is mirrored back at load. An entry (u, v) is quantized
// and dequantized under the scale/offset of row min(u, v), so the
// served matrix stays exactly symmetric.

#ifndef SLAMPRED_LINALG_QUANTIZED_MATRIX_H_
#define SLAMPRED_LINALG_QUANTIZED_MATRIX_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// Code width of a quantized payload.
enum class QuantizationBits : std::uint8_t {
  kU8 = 8,    ///< 256 levels per row.
  kU16 = 16,  ///< 65536 levels per row.
};

/// Stable name ("u8" / "u16").
const char* QuantizationBitsName(QuantizationBits bits);

/// Number of code steps per row (levels = 2^bits − 1).
inline std::size_t QuantizationLevels(QuantizationBits bits) {
  return bits == QuantizationBits::kU8 ? 255u : 65535u;
}

/// Dense matrix stored as per-row (offset, scale) plus one u8/u16 code
/// per entry. Immutable after construction.
class QuantizedMatrix {
 public:
  /// Empty 0x0 matrix.
  QuantizedMatrix() = default;

  /// Quantizes `m` row by row. Fails with kInvalidArgument when any
  /// entry is NaN or ±inf (quantizing garbage would serve garbage).
  static Result<QuantizedMatrix> FromMatrix(const Matrix& m,
                                            QuantizationBits bits);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  QuantizationBits bits() const { return bits_; }

  /// Dequantized entry (i, j); unchecked.
  double At(std::size_t i, std::size_t j) const {
    return offsets_[i] + scales_[i] * static_cast<double>(CodeAt(i, j));
  }

  /// Raw code of entry (i, j); unchecked.
  std::size_t CodeAt(std::size_t i, std::size_t j) const {
    const std::size_t e = i * cols_ + j;
    return bits_ == QuantizationBits::kU8
               ? static_cast<std::size_t>(codes8_[e])
               : static_cast<std::size_t>(codes16_[e]);
  }

  /// Fills `out` (resized to cols) with the dequantized row `i`.
  void RowScores(std::size_t i, std::vector<double>& out) const;

  /// Per-row quantization parameters.
  const std::vector<double>& offsets() const { return offsets_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Dequantizes the whole matrix (tests / round-trip checks).
  Matrix ToDense() const;

  /// Bytes of the quantized representation (codes + row parameters).
  std::size_t PayloadBytes() const;

  /// Bytes the same matrix costs as dense float64.
  std::size_t FloatBytes() const { return rows_ * cols_ * sizeof(double); }

  /// Heap bytes held (the in-memory footprint).
  std::size_t EstimatedBytes() const { return PayloadBytes(); }

  /// Shape / parameter invariants: offset and scale vectors sized to
  /// rows with finite offsets and finite non-negative scales, codes
  /// sized rows·cols in the declared width.
  Status Validate() const;

  /// Appends bits + shape + row parameters + codes to `writer`.
  void Serialize(BinaryWriter& writer) const;

  /// Reads a matrix written by Serialize. Truncation, an unknown code
  /// width, or a corrupt (non-finite / negative) scale or offset vector
  /// all fail with an offset-diagnosed kIoError.
  static Result<QuantizedMatrix> Deserialize(BinaryReader& reader);

  bool operator==(const QuantizedMatrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           bits_ == other.bits_ && offsets_ == other.offsets_ &&
           scales_ == other.scales_ && codes8_ == other.codes8_ &&
           codes16_ == other.codes16_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  QuantizationBits bits_ = QuantizationBits::kU8;
  std::vector<double> offsets_;        // size rows
  std::vector<double> scales_;         // size rows, >= 0
  std::vector<std::uint8_t> codes8_;   // rows*cols when bits == kU8
  std::vector<std::uint16_t> codes16_;  // rows*cols when bits == kU16
};

/// Quantized square block that stores only the upper triangle —
/// the per-cluster shard-block counterpart. Shard blocks come from
/// U·Vᵀ products that are symmetric up to the last ulp, so the upper
/// entry (i, j), i <= j is taken as canonical: both (i, j) and (j, i)
/// dequantize to the identical value under row i's parameters, and the
/// stored codes cover only n(n+1)/2 entries. FromMatrix rejects blocks
/// whose asymmetry exceeds floating-point noise rather than silently
/// rewriting genuinely asymmetric scores.
class QuantizedSymmetricDense {
 public:
  QuantizedSymmetricDense() = default;

  /// Quantizes a square, symmetric-up-to-ulp matrix. Fails with
  /// kInvalidArgument on non-square shape, NaN/inf entries, or
  /// asymmetry beyond |a − b| <= 1e-9 · (|a| + |b| + 1).
  static Result<QuantizedSymmetricDense> FromMatrix(const Matrix& m,
                                                    QuantizationBits bits);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  QuantizationBits bits() const { return bits_; }

  /// Dequantized entry; At(i, j) == At(j, i) bit for bit.
  double At(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    const std::size_t e = TriIndex(i, j);
    const std::size_t code = bits_ == QuantizationBits::kU8
                                 ? static_cast<std::size_t>(codes8_[e])
                                 : static_cast<std::size_t>(codes16_[e]);
    return offsets_[i] + scales_[i] * static_cast<double>(code);
  }

  /// Fills `out` (resized to rows) with the dequantized row `i`.
  void RowScores(std::size_t i, std::vector<double>& out) const;

  const std::vector<double>& offsets() const { return offsets_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Heap bytes held (triangular codes + row parameters).
  std::size_t EstimatedBytes() const;

  void Serialize(BinaryWriter& writer) const;

  /// Reads a block written by Serialize; truncation and corrupt
  /// scale/offset vectors fail with an offset-diagnosed kIoError.
  static Result<QuantizedSymmetricDense> Deserialize(BinaryReader& reader);

  bool operator==(const QuantizedSymmetricDense& other) const {
    return rows_ == other.rows_ && bits_ == other.bits_ &&
           offsets_ == other.offsets_ && scales_ == other.scales_ &&
           codes8_ == other.codes8_ && codes16_ == other.codes16_;
  }

 private:
  /// Index of canonical entry (i, j), i <= j, in the packed upper
  /// triangle: row i's segment starts at i·n − i(i−1)/2 and holds the
  /// n − i entries j = i .. n−1.
  std::size_t TriIndex(std::size_t i, std::size_t j) const {
    return i * rows_ - (i * (i - 1)) / 2 + (j - i);
  }

  std::size_t rows_ = 0;
  QuantizationBits bits_ = QuantizationBits::kU8;
  std::vector<double> offsets_;         // size rows (canonical-segment params)
  std::vector<double> scales_;          // size rows, >= 0
  std::vector<std::uint8_t> codes8_;    // n(n+1)/2 when bits == kU8
  std::vector<std::uint16_t> codes16_;  // n(n+1)/2 when bits == kU16
};

/// Quantized symmetric sparse matrix — the boundary-CSR counterpart.
/// In memory the full (mirrored) pattern is held for O(log nnz(row))
/// lookups and O(nnz(row)) row streams; on disk only the strict upper
/// triangle is stored. Entry (u, v) always dequantizes under the
/// parameters of row min(u, v), so At(u, v) == At(v, u) bit for bit.
class QuantizedSymmetricCsr {
 public:
  QuantizedSymmetricCsr() = default;

  /// Quantizes a symmetric CSR. Fails with kInvalidArgument when the
  /// matrix is not square, not exactly symmetric (pattern and values),
  /// or holds non-finite values.
  static Result<QuantizedSymmetricCsr> FromCsr(const CsrMatrix& csr,
                                               QuantizationBits bits);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return rows_; }
  /// Stored entries of the full mirrored pattern (2x the upper count).
  std::size_t nnz() const { return col_idx_.size(); }
  bool empty() const { return rows_ == 0; }
  QuantizationBits bits() const { return bits_; }

  /// Dequantized entry (u, v); 0.0 when the pair is not stored.
  double At(std::size_t u, std::size_t v) const;

  /// Streams the stored entries of row `u` as (column, dequantized
  /// value) without materialising anything n-sized.
  template <typename Fn>
  void ForEachInRow(std::size_t u, Fn&& fn) const {
    for (std::size_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
      fn(col_idx_[e], DequantEntry(u, e));
    }
  }

  /// Adds the dequantized row `u` into `out` (sized >= rows).
  void ScatterRow(std::size_t u, std::vector<double>& out) const;

  std::size_t RowNnz(std::size_t u) const {
    return row_ptr_[u + 1] - row_ptr_[u];
  }

  /// Per-basis-row quantization parameters.
  const std::vector<double>& offsets() const { return offsets_; }
  const std::vector<double>& scales() const { return scales_; }

  /// Heap bytes held (full mirrored pattern + row parameters).
  std::size_t EstimatedBytes() const;

  /// Appends bits + shape + row parameters + the strict upper triangle
  /// to `writer`.
  void Serialize(BinaryWriter& writer) const;

  /// Reads a matrix written by Serialize and mirrors the pattern back.
  /// Truncation, out-of-range or non-ascending columns, lower-triangle
  /// entries, and corrupt scale/offset vectors all fail with an
  /// offset-diagnosed kIoError.
  static Result<QuantizedSymmetricCsr> Deserialize(BinaryReader& reader);

  bool operator==(const QuantizedSymmetricCsr& other) const {
    return rows_ == other.rows_ && bits_ == other.bits_ &&
           offsets_ == other.offsets_ && scales_ == other.scales_ &&
           row_ptr_ == other.row_ptr_ && col_idx_ == other.col_idx_ &&
           codes8_ == other.codes8_ && codes16_ == other.codes16_;
  }

 private:
  std::size_t CodeOf(std::size_t e) const {
    return bits_ == QuantizationBits::kU8
               ? static_cast<std::size_t>(codes8_[e])
               : static_cast<std::size_t>(codes16_[e]);
  }

  /// Dequantizes stored entry `e` of row `u` under row min(u, col).
  double DequantEntry(std::size_t u, std::size_t e) const {
    const std::size_t basis = std::min(u, static_cast<std::size_t>(col_idx_[e]));
    return offsets_[basis] + scales_[basis] * static_cast<double>(CodeOf(e));
  }

  std::size_t rows_ = 0;
  QuantizationBits bits_ = QuantizationBits::kU8;
  std::vector<double> offsets_;          // size rows (basis-row params)
  std::vector<double> scales_;           // size rows, >= 0
  std::vector<std::size_t> row_ptr_;     // size rows + 1, full pattern
  std::vector<std::uint32_t> col_idx_;   // full mirrored pattern
  std::vector<std::uint8_t> codes8_;     // per stored entry (kU8)
  std::vector<std::uint16_t> codes16_;   // per stored entry (kU16)
};

}  // namespace slampred

#endif  // SLAMPRED_LINALG_QUANTIZED_MATRIX_H_
