#include "linalg/matrix_ops.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "linalg/gemm_kernel.h"
#include "linalg/svd.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace slampred {

Matrix GramAtA(const Matrix& a) {
  const std::size_t n = a.cols();
  const std::size_t inner = a.rows();
  Matrix g(n, n);
  const double* ad = a.data().data();
  double* gd = g.data().data();
  // Upper triangle through the shared micro-kernel (pa = Aᵀ read in
  // place, col_begin(i) = i), one writing chunk per output row.
  ParallelFor(0, n, GrainForWork(inner * n),
              [&](std::size_t row0, std::size_t row1) {
                internal::GemmAccumulateRows(
                    row0, row1, inner, n,
                    [ad, n](std::size_t i, std::size_t k) {
                      return ad[k * n + i];
                    },
                    ad, gd, [](std::size_t i) { return i; });
              });
  ParallelFor(0, n, GrainForWork(n),
              [&](std::size_t row0, std::size_t row1) {
                for (std::size_t i = row0; i < row1; ++i) {
                  for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
                }
              });
  return g;
}

Matrix GramAAt(const Matrix& a) { return MultiplyABt(a, a); }

Matrix MultiplyABt(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.cols() == b.cols()) << "A*Bt shape mismatch";
  const std::size_t inner = a.cols();
  Matrix out(a.rows(), b.rows());
  ParallelFor(
      0, a.rows(), GrainForWork(inner * b.rows()),
      [&](std::size_t row0, std::size_t row1) {
        // Zero-skip fast path (symmetric with MultiplyAtB/GramAtA): the
        // nonzeros of row i are gathered once, then every dot against a
        // row of B walks only them — k stays ascending per element.
        std::vector<std::pair<std::size_t, double>> nonzeros;
        nonzeros.reserve(inner);
        for (std::size_t i = row0; i < row1; ++i) {
          nonzeros.clear();
          for (std::size_t k = 0; k < inner; ++k) {
            const double aik = a(i, k);
            if (aik != 0.0) nonzeros.emplace_back(k, aik);
          }
          if (nonzeros.empty()) continue;
          if (nonzeros.size() == inner) {
            // Dense row: direct dots, no indirection.
            for (std::size_t j = 0; j < b.rows(); ++j) {
              double sum = 0.0;
              for (std::size_t k = 0; k < inner; ++k) {
                sum += a(i, k) * b(j, k);
              }
              out(i, j) = sum;
            }
            continue;
          }
          for (std::size_t j = 0; j < b.rows(); ++j) {
            double sum = 0.0;
            for (const auto& [k, aik] : nonzeros) sum += aik * b(j, k);
            out(i, j) = sum;
          }
        }
      });
  return out;
}

Matrix MultiplyAtB(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.rows() == b.rows()) << "At*B shape mismatch";
  const std::size_t inner = a.rows();
  const std::size_t acols = a.cols();
  const std::size_t ncols = b.cols();
  Matrix out(acols, ncols);
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* od = out.data().data();
  ParallelFor(0, acols, GrainForWork(inner * ncols),
              [&](std::size_t row0, std::size_t row1) {
                internal::GemmAccumulateRows(
                    row0, row1, inner, ncols,
                    [ad, acols](std::size_t i, std::size_t k) {
                      return ad[k * acols + i];
                    },
                    bd, od, [](std::size_t) { return std::size_t{0}; });
              });
  return out;
}

Matrix PositivePart(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) v = std::max(v, 0.0);
  return out;
}

Matrix SignMatrix(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) {
    v = v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0);
  }
  return out;
}

Matrix AbsMatrix(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) v = std::fabs(v);
  return out;
}

Result<std::size_t> NumericalRank(const Matrix& m, double tol) {
  auto svd = ComputeSvd(m);
  if (!svd.ok()) return svd.status();
  const auto& sigma = svd.value().singular_values;
  if (sigma.empty()) return std::size_t{0};
  const double cutoff = tol * sigma[0];
  std::size_t rank = 0;
  for (double s : sigma.data()) {
    if (s > cutoff) ++rank;
  }
  return rank;
}

Result<double> NuclearNorm(const Matrix& m) {
  auto svd = ComputeSvd(m);
  if (!svd.ok()) return svd.status();
  return svd.value().singular_values.Sum();
}

double SpectralNormEstimate(const Matrix& m, int iterations) {
  if (m.empty()) return 0.0;
  // Power iteration on the Gram operator v -> Aᵀ(Av).
  Vector v(m.cols(), 1.0);
  v = v.Normalized();
  double sigma = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector av = m * v;
    Vector atav(m.cols());
    ParallelFor(0, m.cols(), GrainForWork(m.rows()),
                [&](std::size_t j0, std::size_t j1) {
                  for (std::size_t j = j0; j < j1; ++j) {
                    double sum = 0.0;
                    for (std::size_t i = 0; i < m.rows(); ++i) {
                      sum += m(i, j) * av[i];
                    }
                    atav[j] = sum;
                  }
                });
    const double norm = atav.Norm();
    if (norm <= 1e-300) return 0.0;
    v = atav * (1.0 / norm);
    sigma = std::sqrt(norm);
  }
  return sigma;
}

double RelativeMaxDiff(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    diff = std::max(diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return diff / std::max(1.0, a.MaxAbs());
}

Matrix Clamp(const Matrix& m, double lo, double hi) {
  Matrix out = m;
  for (double& v : out.data()) v = std::clamp(v, lo, hi);
  return out;
}

Matrix ZeroDiagonal(const Matrix& m) {
  SLAMPRED_CHECK(m.IsSquare()) << "ZeroDiagonal on non-square matrix";
  Matrix out = m;
  for (std::size_t i = 0; i < m.rows(); ++i) out(i, i) = 0.0;
  return out;
}

}  // namespace slampred
