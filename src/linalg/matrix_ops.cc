#include "linalg/matrix_ops.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"
#include "util/logging.h"

namespace slampred {

Matrix GramAtA(const Matrix& a) {
  const std::size_t n = a.cols();
  Matrix g(n, n);
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = i; j < n; ++j) {
        g(i, j) += aki * a(k, j);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

Matrix GramAAt(const Matrix& a) { return MultiplyABt(a, a); }

Matrix MultiplyABt(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.cols() == b.cols()) << "A*Bt shape mismatch";
  Matrix out(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) sum += a(i, k) * b(j, k);
      out(i, j) = sum;
    }
  }
  return out;
}

Matrix MultiplyAtB(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.rows() == b.rows()) << "At*B shape mismatch";
  Matrix out(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aki * b(k, j);
      }
    }
  }
  return out;
}

Matrix PositivePart(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) v = std::max(v, 0.0);
  return out;
}

Matrix SignMatrix(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) {
    v = v > 0.0 ? 1.0 : (v < 0.0 ? -1.0 : 0.0);
  }
  return out;
}

Matrix AbsMatrix(const Matrix& m) {
  Matrix out = m;
  for (double& v : out.data()) v = std::fabs(v);
  return out;
}

Result<std::size_t> NumericalRank(const Matrix& m, double tol) {
  auto svd = ComputeSvd(m);
  if (!svd.ok()) return svd.status();
  const auto& sigma = svd.value().singular_values;
  if (sigma.empty()) return std::size_t{0};
  const double cutoff = tol * sigma[0];
  std::size_t rank = 0;
  for (double s : sigma.data()) {
    if (s > cutoff) ++rank;
  }
  return rank;
}

Result<double> NuclearNorm(const Matrix& m) {
  auto svd = ComputeSvd(m);
  if (!svd.ok()) return svd.status();
  return svd.value().singular_values.Sum();
}

double SpectralNormEstimate(const Matrix& m, int iterations) {
  if (m.empty()) return 0.0;
  // Power iteration on the Gram operator v -> Aᵀ(Av).
  Vector v(m.cols(), 1.0);
  v = v.Normalized();
  double sigma = 0.0;
  for (int it = 0; it < iterations; ++it) {
    Vector av = m * v;
    Vector atav(m.cols());
    for (std::size_t j = 0; j < m.cols(); ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m.rows(); ++i) sum += m(i, j) * av[i];
      atav[j] = sum;
    }
    const double norm = atav.Norm();
    if (norm <= 1e-300) return 0.0;
    v = atav * (1.0 / norm);
    sigma = std::sqrt(norm);
  }
  return sigma;
}

double RelativeMaxDiff(const Matrix& a, const Matrix& b) {
  SLAMPRED_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    diff = std::max(diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  return diff / std::max(1.0, a.MaxAbs());
}

Matrix Clamp(const Matrix& m, double lo, double hi) {
  Matrix out = m;
  for (double& v : out.data()) v = std::clamp(v, lo, hi);
  return out;
}

Matrix ZeroDiagonal(const Matrix& m) {
  SLAMPRED_CHECK(m.IsSquare()) << "ZeroDiagonal on non-square matrix";
  Matrix out = m;
  for (std::size_t i = 0; i < m.rows(); ++i) out(i, i) = 0.0;
  return out;
}

}  // namespace slampred
