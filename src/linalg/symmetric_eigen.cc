#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/stopwatch.h"

namespace slampred {

Matrix SymmetricEigenResult::Reconstruct() const {
  const std::size_t n = eigenvalues.size();
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eigenvectors(i, k) * eigenvalues[k] * eigenvectors(j, k);
      }
      out(i, j) = sum;
    }
  }
  return out;
}

Result<SymmetricEigenResult> ComputeSymmetricEigen(
    const Matrix& a, const SymmetricEigenOptions& options) {
  SvdTimerScope svd_timer;
  if (a.empty()) {
    return Status::InvalidArgument("eigen of empty matrix");
  }
  if (!a.IsSquare()) {
    return Status::InvalidArgument("eigen of non-square matrix");
  }
  if (!a.IsSymmetric(1e-8 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("eigen of asymmetric matrix");
  }

  const std::size_t n = a.rows();
  Matrix m = a.Symmetrized();  // Wipe out tiny asymmetries up front.
  Matrix q = Matrix::Identity(n);

  auto off_diag_norm = [&]() {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) sum += m(i, j) * m(i, j);
    }
    return std::sqrt(2.0 * sum);
  };

  const double scale = std::max(m.FrobeniusNorm(), 1e-300);
  bool converged = off_diag_norm() <= options.tol * scale;

  for (int sweep = 0; sweep < options.max_sweeps && !converged; ++sweep) {
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t quad = p + 1; quad < n; ++quad) {
        const std::size_t qq = quad;
        const double apq = m(p, qq);
        if (std::fabs(apq) <= options.tol * scale / (n * n)) continue;

        const double app = m(p, p);
        const double aqq = m(qq, qq);
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t =
            (zeta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;

        // Apply the rotation J(p, q, theta) from both sides: M <- JᵀMJ.
        for (std::size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, qq);
          m(k, p) = c * mkp - s * mkq;
          m(k, qq) = s * mkp + c * mkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(qq, k);
          m(p, k) = c * mpk - s * mqk;
          m(qq, k) = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors: Q <- Q J.
        for (std::size_t k = 0; k < n; ++k) {
          const double qkp = q(k, p);
          const double qkq = q(k, qq);
          q(k, p) = c * qkp - s * qkq;
          q(k, qq) = s * qkp + c * qkq;
        }
      }
    }
    converged = off_diag_norm() <= options.tol * scale;
  }
  if (!converged) {
    return Status::NotConverged("Jacobi eigen iteration did not converge");
  }

  // Sort eigenpairs ascending by eigenvalue.
  Vector lambda(n);
  for (std::size_t i = 0; i < n; ++i) lambda[i] = m(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return lambda[x] < lambda[y];
  });

  SymmetricEigenResult res;
  res.eigenvalues = Vector(n);
  res.eigenvectors = Matrix(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    res.eigenvalues[jj] = lambda[j];
    for (std::size_t i = 0; i < n; ++i) res.eigenvectors(i, jj) = q(i, j);
  }
  return res;
}

}  // namespace slampred
