// Sparse 3-way tensor: a stack of CSR slices, the default representation
// for the per-network intimacy feature tensors X^k (d x n x n, a few nnz
// per row per slice). Mirrors the Tensor3 API it replaces; every kernel
// reproduces the dense kernel's per-element accumulation order (zero
// terms are exact no-ops for the sums involved), so results match the
// dense path bit for bit. Interop with Tensor3 is via FromDense/ToDense
// at the (rare) dense boundaries — see DESIGN.md "Sparse data path".

#ifndef SLAMPRED_LINALG_SPARSE_TENSOR3_H_
#define SLAMPRED_LINALG_SPARSE_TENSOR3_H_

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/tensor3.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

class BinaryReader;
class BinaryWriter;

/// Sparse 3-way tensor of shape (dim0, dim1, dim2): dim0 CSR slices of
/// dim1 x dim2. Indexing follows the paper: T(k, i, j) is entry (i, j)
/// of the k-th slice.
class SparseTensor3 {
 public:
  SparseTensor3() = default;

  /// All-empty tensor of the given shape.
  SparseTensor3(std::size_t dim0, std::size_t dim1, std::size_t dim2);

  /// Converts a dense tensor slice by slice (entries with |v| <=
  /// drop_tol dropped).
  static SparseTensor3 FromDense(const Tensor3& dense, double drop_tol = 0.0);

  /// Densifies (the dense-boundary bridge; intended for the embedding
  /// projection and tests).
  Tensor3 ToDense() const;

  std::size_t dim0() const { return dim0_; }
  std::size_t dim1() const { return dim1_; }
  std::size_t dim2() const { return dim2_; }
  bool empty() const { return dim0_ == 0 || dim1_ == 0 || dim2_ == 0; }

  /// Value at (k, i, j); O(log nnz(row i of slice k)).
  double At(std::size_t k, std::size_t i, std::size_t j) const;

  /// The k-th CSR slice.
  const CsrMatrix& SliceCsr(std::size_t k) const;

  /// The k-th slice densified (the paper's X(k, :, :)).
  Matrix Slice(std::size_t k) const;

  /// Overwrites the k-th slice.
  void SetSlice(std::size_t k, CsrMatrix slice);

  /// The fibre T(:, i, j) — the feature vector of user pair (i, j)
  /// (length dim0, zeros where slices have no entry).
  Vector Fiber(std::size_t i, std::size_t j) const;

  /// Sum of all slices along dim0. Bit-identical to the dense
  /// Tensor3::SumSlices of ToDense(): each output element accumulates
  /// its stored fibre entries with k ascending, and skipped zeros are
  /// exact no-ops.
  Matrix SumSlices() const;

  /// Min-max scales each slice to [0, 1], matching the dense
  /// Tensor3::NormalizeSlicesMinMax entry for entry: the slice min/max
  /// include the implicit zeros, and constant slices map to all-zero.
  /// When a slice's minimum is negative and implicit zeros exist they
  /// map to a nonzero value, so that slice densifies — the feature
  /// slices (non-negative, zero diagonal) never hit this path.
  void NormalizeSlicesMinMax();

  /// √v over stored values (the feature build's variance-stabilising
  /// transform; sqrt(0) = 0, so implicit zeros are unaffected).
  void ApplySqrt();

  /// Largest absolute stored value.
  double MaxAbs() const;

  /// Total stored entries across slices.
  std::size_t TotalNnz() const;

  /// Heap bytes across slices (the FitMemoryStats counter).
  std::size_t EstimatedBytes() const;

  /// Bytes the equivalent dense Tensor3 would hold (dim0·dim1·dim2
  /// doubles) — the memory-stats comparison baseline.
  std::size_t DenseEquivalentBytes() const {
    return dim0_ * dim1_ * dim2_ * sizeof(double);
  }

  /// Appends shape + every CSR slice to `writer` (binary_io layout).
  void Serialize(BinaryWriter& writer) const;

  /// Reads a tensor written by Serialize; slice shapes are validated
  /// against the tensor dims, and corrupt payloads yield an
  /// offset-diagnosed kIoError.
  static Result<SparseTensor3> Deserialize(BinaryReader& reader);

 private:
  std::size_t dim0_ = 0;
  std::size_t dim1_ = 0;
  std::size_t dim2_ = 0;
  std::vector<CsrMatrix> slices_;
};

}  // namespace slampred

#endif  // SLAMPRED_LINALG_SPARSE_TENSOR3_H_
