#include "linalg/quantized_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/binary_io.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Quantizes one value under (offset, inv_scale): nearest code, clamped
// to [0, levels]. inv_scale is 0 for constant rows, mapping everything
// to code 0.
template <typename Code>
Code QuantizeValue(double v, double offset, double inv_scale,
                   std::size_t levels) {
  const double scaled = (v - offset) * inv_scale;
  long long code = std::llround(scaled);
  if (code < 0) code = 0;
  if (code > static_cast<long long>(levels)) {
    code = static_cast<long long>(levels);
  }
  return static_cast<Code>(code);
}

// Row min/max with a finite-ness check; returns false on NaN/inf.
bool RowRange(const double* row, std::size_t n, double& lo, double& hi) {
  lo = row[0];
  hi = row[0];
  for (std::size_t j = 0; j < n; ++j) {
    const double v = row[j];
    if (!std::isfinite(v)) return false;
    if (v < lo) lo = v;
    if (v > hi) hi = v;
  }
  return true;
}

Status CheckRowParams(const std::vector<double>& offsets,
                      const std::vector<double>& scales, std::size_t rows,
                      const char* context) {
  if (offsets.size() != rows || scales.size() != rows) {
    return Status::IoError(std::string(context) +
                           ": row parameter vectors sized " +
                           std::to_string(offsets.size()) + "/" +
                           std::to_string(scales.size()) + " for " +
                           std::to_string(rows) + " row(s)");
  }
  for (std::size_t i = 0; i < rows; ++i) {
    if (!std::isfinite(offsets[i])) {
      return Status::IoError(std::string(context) + ": non-finite offset in row " +
                             std::to_string(i));
    }
    if (!std::isfinite(scales[i]) || scales[i] < 0.0) {
      return Status::IoError(std::string(context) + ": corrupt scale " +
                             std::to_string(scales[i]) + " in row " +
                             std::to_string(i) +
                             " (must be finite and non-negative)");
    }
  }
  return Status::OK();
}

void WriteDoubleVector(BinaryWriter& writer, const std::vector<double>& v) {
  for (double x : v) writer.WriteDouble(x);
}

Status ReadDoubleVector(BinaryReader& reader, std::size_t count,
                        std::vector<double>& out, const char* what) {
  if (reader.remaining() < count * sizeof(double)) {
    return reader.Truncated(count * sizeof(double), what);
  }
  out.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto x = reader.ReadDouble();
    if (!x.ok()) return x.status();
    out[i] = x.value();
  }
  return Status::OK();
}

Result<QuantizationBits> ReadBits(BinaryReader& reader) {
  auto raw = reader.ReadU8();
  if (!raw.ok()) return raw.status();
  if (raw.value() != 8 && raw.value() != 16) {
    return Status::IoError("unknown quantization width " +
                           std::to_string(raw.value()) +
                           " (expected 8 or 16)");
  }
  return raw.value() == 8 ? QuantizationBits::kU8 : QuantizationBits::kU16;
}

}  // namespace

const char* QuantizationBitsName(QuantizationBits bits) {
  return bits == QuantizationBits::kU8 ? "u8" : "u16";
}

Result<QuantizedMatrix> QuantizedMatrix::FromMatrix(const Matrix& m,
                                                    QuantizationBits bits) {
  QuantizedMatrix q;
  q.rows_ = m.rows();
  q.cols_ = m.cols();
  q.bits_ = bits;
  q.offsets_.assign(q.rows_, 0.0);
  q.scales_.assign(q.rows_, 0.0);
  if (bits == QuantizationBits::kU8) {
    q.codes8_.resize(q.rows_ * q.cols_);
  } else {
    q.codes16_.resize(q.rows_ * q.cols_);
  }
  if (q.rows_ == 0 || q.cols_ == 0) return q;

  const double levels = static_cast<double>(QuantizationLevels(bits));
  std::vector<std::uint8_t> bad_row(q.rows_, 0);
  // One writer per row: codes are a pure function of the row contents,
  // so the result is bit-identical for any thread count.
  ParallelFor(0, q.rows_, GrainForWork(q.cols_),
              [&](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  const double* row = m.data().data() + i * q.cols_;
                  double lo, hi;
                  if (!RowRange(row, q.cols_, lo, hi)) {
                    bad_row[i] = 1;
                    continue;
                  }
                  const double scale = hi > lo ? (hi - lo) / levels : 0.0;
                  const double inv_scale = scale > 0.0 ? 1.0 / scale : 0.0;
                  q.offsets_[i] = lo;
                  q.scales_[i] = scale;
                  if (bits == QuantizationBits::kU8) {
                    std::uint8_t* codes = q.codes8_.data() + i * q.cols_;
                    for (std::size_t j = 0; j < q.cols_; ++j) {
                      codes[j] = QuantizeValue<std::uint8_t>(
                          row[j], lo, inv_scale,
                          QuantizationLevels(QuantizationBits::kU8));
                    }
                  } else {
                    std::uint16_t* codes = q.codes16_.data() + i * q.cols_;
                    for (std::size_t j = 0; j < q.cols_; ++j) {
                      codes[j] = QuantizeValue<std::uint16_t>(
                          row[j], lo, inv_scale,
                          QuantizationLevels(QuantizationBits::kU16));
                    }
                  }
                }
              });
  for (std::size_t i = 0; i < q.rows_; ++i) {
    if (bad_row[i]) {
      return Status::InvalidArgument(
          "cannot quantize row " + std::to_string(i) +
          ": contains NaN or infinite score");
    }
  }
  return q;
}

void QuantizedMatrix::RowScores(std::size_t i,
                                std::vector<double>& out) const {
  out.resize(cols_);
  const double offset = offsets_[i];
  const double scale = scales_[i];
  if (bits_ == QuantizationBits::kU8) {
    const std::uint8_t* codes = codes8_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) {
      out[j] = offset + scale * static_cast<double>(codes[j]);
    }
  } else {
    const std::uint16_t* codes = codes16_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) {
      out[j] = offset + scale * static_cast<double>(codes[j]);
    }
  }
}

Matrix QuantizedMatrix::ToDense() const {
  Matrix m(rows_, cols_);
  std::vector<double> row;
  for (std::size_t i = 0; i < rows_; ++i) {
    RowScores(i, row);
    std::memcpy(m.data().data() + i * cols_, row.data(),
                cols_ * sizeof(double));
  }
  return m;
}

std::size_t QuantizedMatrix::PayloadBytes() const {
  const std::size_t code_bytes =
      bits_ == QuantizationBits::kU8 ? codes8_.size() : codes16_.size() * 2;
  return code_bytes + (offsets_.size() + scales_.size()) * sizeof(double);
}

Status QuantizedMatrix::Validate() const {
  Status params = CheckRowParams(offsets_, scales_, rows_, "quantized matrix");
  if (!params.ok()) return params;
  const std::size_t want = rows_ * cols_;
  const std::size_t have =
      bits_ == QuantizationBits::kU8 ? codes8_.size() : codes16_.size();
  if (have != want ||
      (bits_ == QuantizationBits::kU8 ? !codes16_.empty() : !codes8_.empty())) {
    return Status::IoError("quantized matrix code storage sized " +
                           std::to_string(have) + " for " +
                           std::to_string(want) + " entries");
  }
  return Status::OK();
}

void QuantizedMatrix::Serialize(BinaryWriter& writer) const {
  writer.WriteU8(static_cast<std::uint8_t>(bits_));
  writer.WriteU64(rows_);
  writer.WriteU64(cols_);
  WriteDoubleVector(writer, offsets_);
  WriteDoubleVector(writer, scales_);
  if (bits_ == QuantizationBits::kU8) {
    writer.WriteBytes(codes8_.data(), codes8_.size());
  } else {
    for (std::uint16_t c : codes16_) writer.WriteU16(c);
  }
}

Result<QuantizedMatrix> QuantizedMatrix::Deserialize(BinaryReader& reader) {
  auto bits = ReadBits(reader);
  if (!bits.ok()) return bits.status();
  auto rows = reader.ReadU64();
  if (!rows.ok()) return rows.status();
  auto cols = reader.ReadU64();
  if (!cols.ok()) return cols.status();

  QuantizedMatrix q;
  q.bits_ = bits.value();
  q.rows_ = static_cast<std::size_t>(rows.value());
  q.cols_ = static_cast<std::size_t>(cols.value());
  // Reject absurd shapes before any allocation can be driven by them.
  const std::size_t code_width = q.bits_ == QuantizationBits::kU8 ? 1 : 2;
  if (q.rows_ != 0 &&
      (q.cols_ > reader.remaining() / code_width / q.rows_ + 1)) {
    return reader.Truncated(q.rows_ * q.cols_ * code_width,
                            "quantized code block");
  }
  Status s = ReadDoubleVector(reader, q.rows_, q.offsets_,
                              "quantized row offsets");
  if (!s.ok()) return s;
  s = ReadDoubleVector(reader, q.rows_, q.scales_, "quantized row scales");
  if (!s.ok()) return s;
  s = CheckRowParams(q.offsets_, q.scales_, q.rows_, "quantized matrix");
  if (!s.ok()) return s;

  const std::size_t entries = q.rows_ * q.cols_;
  if (q.bits_ == QuantizationBits::kU8) {
    q.codes8_.resize(entries);
    s = reader.ReadBytes(q.codes8_.data(), entries);
    if (!s.ok()) return s;
  } else {
    if (reader.remaining() < entries * 2) {
      return reader.Truncated(entries * 2, "quantized u16 codes");
    }
    q.codes16_.resize(entries);
    for (std::size_t e = 0; e < entries; ++e) {
      auto c = reader.ReadU16();
      if (!c.ok()) return c.status();
      q.codes16_[e] = c.value();
    }
  }
  return q;
}

Result<QuantizedSymmetricDense> QuantizedSymmetricDense::FromMatrix(
    const Matrix& m, QuantizationBits bits) {
  if (m.rows() != m.cols()) {
    return Status::InvalidArgument(
        "symmetric block quantization requires a square matrix, got " +
        std::to_string(m.rows()) + "x" + std::to_string(m.cols()));
  }
  const std::size_t n = m.rows();
  QuantizedSymmetricDense q;
  q.rows_ = n;
  q.bits_ = bits;
  q.offsets_.assign(n, 0.0);
  q.scales_.assign(n, 0.0);
  const std::size_t tri = n * (n + 1) / 2;
  if (bits == QuantizationBits::kU8) {
    q.codes8_.resize(tri);
  } else {
    q.codes16_.resize(tri);
  }
  if (n == 0) return q;

  const double levels = static_cast<double>(QuantizationLevels(bits));
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = m.data().data() + i * n;
    // Canonical segment j in [i, n): the parameters of row i only ever
    // dequantize canonical entries, so the range covers exactly those.
    double lo, hi;
    if (!RowRange(row + i, n - i, lo, hi)) {
      return Status::InvalidArgument("cannot quantize block row " +
                                     std::to_string(i) +
                                     ": contains NaN or infinite score");
    }
    const double scale = hi > lo ? (hi - lo) / levels : 0.0;
    const double inv_scale = scale > 0.0 ? 1.0 / scale : 0.0;
    q.offsets_[i] = lo;
    q.scales_[i] = scale;
    for (std::size_t j = i; j < n; ++j) {
      const double a = row[j];
      const double b = m(j, i);
      if (!std::isfinite(b)) {
        return Status::InvalidArgument("cannot quantize block row " +
                                       std::to_string(j) +
                                       ": contains NaN or infinite score");
      }
      if (std::abs(a - b) > 1e-9 * (std::abs(a) + std::abs(b) + 1.0)) {
        return Status::InvalidArgument(
            "block is not symmetric at (" + std::to_string(i) + ", " +
            std::to_string(j) + "): " + std::to_string(a) + " vs " +
            std::to_string(b) +
            " — symmetric quantization would rewrite scores");
      }
      const std::size_t e = q.TriIndex(i, j);
      if (bits == QuantizationBits::kU8) {
        q.codes8_[e] = QuantizeValue<std::uint8_t>(a, lo, inv_scale, 255u);
      } else {
        q.codes16_[e] = QuantizeValue<std::uint16_t>(a, lo, inv_scale, 65535u);
      }
    }
  }
  return q;
}

void QuantizedSymmetricDense::RowScores(std::size_t i,
                                        std::vector<double>& out) const {
  out.resize(rows_);
  for (std::size_t j = 0; j < rows_; ++j) out[j] = At(i, j);
}

std::size_t QuantizedSymmetricDense::EstimatedBytes() const {
  return (offsets_.size() + scales_.size()) * sizeof(double) +
         codes8_.size() + codes16_.size() * 2;
}

void QuantizedSymmetricDense::Serialize(BinaryWriter& writer) const {
  writer.WriteU8(static_cast<std::uint8_t>(bits_));
  writer.WriteU64(rows_);
  WriteDoubleVector(writer, offsets_);
  WriteDoubleVector(writer, scales_);
  if (bits_ == QuantizationBits::kU8) {
    writer.WriteBytes(codes8_.data(), codes8_.size());
  } else {
    for (std::uint16_t c : codes16_) writer.WriteU16(c);
  }
}

Result<QuantizedSymmetricDense> QuantizedSymmetricDense::Deserialize(
    BinaryReader& reader) {
  auto bits = ReadBits(reader);
  if (!bits.ok()) return bits.status();
  auto rows = reader.ReadU64();
  if (!rows.ok()) return rows.status();

  QuantizedSymmetricDense q;
  q.bits_ = bits.value();
  q.rows_ = static_cast<std::size_t>(rows.value());
  const std::size_t n = q.rows_;
  const std::size_t tri = n * (n + 1) / 2;
  const std::size_t code_width = q.bits_ == QuantizationBits::kU8 ? 1 : 2;
  const std::size_t min_bytes = n * 2 * sizeof(double) + tri * code_width;
  if (n != 0 && reader.remaining() < min_bytes) {
    return reader.Truncated(min_bytes, "quantized block body");
  }
  Status s = ReadDoubleVector(reader, n, q.offsets_, "quantized row offsets");
  if (!s.ok()) return s;
  s = ReadDoubleVector(reader, n, q.scales_, "quantized row scales");
  if (!s.ok()) return s;
  s = CheckRowParams(q.offsets_, q.scales_, n, "quantized block");
  if (!s.ok()) return s;
  if (q.bits_ == QuantizationBits::kU8) {
    q.codes8_.resize(tri);
    s = reader.ReadBytes(q.codes8_.data(), tri);
    if (!s.ok()) return s;
  } else {
    q.codes16_.resize(tri);
    for (std::size_t e = 0; e < tri; ++e) {
      auto c = reader.ReadU16();
      if (!c.ok()) return c.status();
      q.codes16_[e] = c.value();
    }
  }
  return q;
}

Result<QuantizedSymmetricCsr> QuantizedSymmetricCsr::FromCsr(
    const CsrMatrix& csr, QuantizationBits bits) {
  if (csr.rows() != csr.cols()) {
    return Status::InvalidArgument(
        "symmetric quantization requires a square matrix, got " +
        std::to_string(csr.rows()) + "x" + std::to_string(csr.cols()));
  }
  const std::size_t n = csr.rows();
  QuantizedSymmetricCsr q;
  q.rows_ = n;
  q.bits_ = bits;
  q.offsets_.assign(n, 0.0);
  q.scales_.assign(n, 0.0);
  q.row_ptr_.assign(n + 1, 0);
  if (n == 0) return q;

  // Pass 1: per-row min/max over the FULL stored pattern plus the
  // implicit zeros (any row shorter than n has absent entries, which
  // must dequantize to a value the code range can represent — include
  // 0 in the range so the codes of stored entries stay faithful even
  // though absent entries are returned as exact 0.0 without decoding).
  const double levels = static_cast<double>(QuantizationLevels(bits));
  for (std::size_t u = 0; u < n; ++u) {
    double lo = 0.0, hi = 0.0;
    bool any = false;
    for (std::size_t e = csr.row_ptr()[u]; e < csr.row_ptr()[u + 1]; ++e) {
      const double v = csr.values()[e];
      if (!std::isfinite(v)) {
        return Status::InvalidArgument(
            "cannot quantize boundary row " + std::to_string(u) +
            ": contains NaN or infinite score");
      }
      if (!any) {
        lo = v;
        hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (csr.row_ptr()[u + 1] - csr.row_ptr()[u] < n) {
      lo = std::min(lo, 0.0);
      hi = std::max(hi, 0.0);
    }
    q.offsets_[u] = lo;
    q.scales_[u] = hi > lo ? (hi - lo) / levels : 0.0;
  }

  // Pass 2: verify exact symmetry and quantize every stored entry
  // under the min-endpoint row parameters. Both (u,v) and (v,u) get
  // the same code by construction, so the mirrored pattern is filled
  // directly.
  const std::size_t nnz = csr.nnz();
  q.col_idx_.resize(nnz);
  if (bits == QuantizationBits::kU8) {
    q.codes8_.resize(nnz);
  } else {
    q.codes16_.resize(nnz);
  }
  for (std::size_t u = 0; u <= n; ++u) q.row_ptr_[u] = csr.row_ptr()[u];
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t e = csr.row_ptr()[u]; e < csr.row_ptr()[u + 1]; ++e) {
      const std::size_t v = csr.col_idx()[e];
      if (v >= n) {
        return Status::InvalidArgument("boundary column " + std::to_string(v) +
                                       " out of range for " +
                                       std::to_string(n) + " rows");
      }
      const double value = csr.values()[e];
      if (u < v) {
        // Verify the mirror entry exists with the exact same bits.
        const double mirror = csr.At(v, u);
        if (std::memcmp(&mirror, &value, sizeof(double)) != 0) {
          return Status::InvalidArgument(
              "boundary matrix is not exactly symmetric at (" +
              std::to_string(u) + ", " + std::to_string(v) + ")");
        }
      }
      const std::size_t basis = std::min(u, v);
      const double scale = q.scales_[basis];
      const double inv_scale = scale > 0.0 ? 1.0 / scale : 0.0;
      const std::size_t code =
          bits == QuantizationBits::kU8
              ? QuantizeValue<std::uint8_t>(value, q.offsets_[basis], inv_scale,
                                            255u)
              : QuantizeValue<std::uint16_t>(value, q.offsets_[basis],
                                             inv_scale, 65535u);
      q.col_idx_[e] = static_cast<std::uint32_t>(v);
      if (bits == QuantizationBits::kU8) {
        q.codes8_[e] = static_cast<std::uint8_t>(code);
      } else {
        q.codes16_[e] = static_cast<std::uint16_t>(code);
      }
    }
  }
  return q;
}

double QuantizedSymmetricCsr::At(std::size_t u, std::size_t v) const {
  const std::size_t begin = row_ptr_[u];
  const std::size_t end = row_ptr_[u + 1];
  const auto* first = col_idx_.data() + begin;
  const auto* last = col_idx_.data() + end;
  const auto* it =
      std::lower_bound(first, last, static_cast<std::uint32_t>(v));
  if (it == last || *it != v) return 0.0;
  return DequantEntry(u, begin + static_cast<std::size_t>(it - first));
}

void QuantizedSymmetricCsr::ScatterRow(std::size_t u,
                                       std::vector<double>& out) const {
  for (std::size_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
    out[col_idx_[e]] += DequantEntry(u, e);
  }
}

std::size_t QuantizedSymmetricCsr::EstimatedBytes() const {
  return (offsets_.size() + scales_.size()) * sizeof(double) +
         row_ptr_.size() * sizeof(std::size_t) +
         col_idx_.size() * sizeof(std::uint32_t) + codes8_.size() +
         codes16_.size() * 2;
}

void QuantizedSymmetricCsr::Serialize(BinaryWriter& writer) const {
  writer.WriteU8(static_cast<std::uint8_t>(bits_));
  writer.WriteU64(rows_);
  // Strict upper triangle only — the reader mirrors the pattern back.
  std::uint64_t upper = 0;
  for (std::size_t u = 0; u < rows_; ++u) {
    for (std::size_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
      if (col_idx_[e] > u) ++upper;
    }
  }
  writer.WriteU64(upper);
  WriteDoubleVector(writer, offsets_);
  WriteDoubleVector(writer, scales_);
  for (std::size_t u = 0; u < rows_; ++u) {
    std::uint32_t count = 0;
    for (std::size_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
      if (col_idx_[e] > u) ++count;
    }
    writer.WriteU32(count);
  }
  for (std::size_t u = 0; u < rows_; ++u) {
    for (std::size_t e = row_ptr_[u]; e < row_ptr_[u + 1]; ++e) {
      if (col_idx_[e] <= u) continue;
      writer.WriteU32(col_idx_[e]);
      if (bits_ == QuantizationBits::kU8) {
        writer.WriteU8(codes8_[e]);
      } else {
        writer.WriteU16(codes16_[e]);
      }
    }
  }
}

Result<QuantizedSymmetricCsr> QuantizedSymmetricCsr::Deserialize(
    BinaryReader& reader) {
  auto bits = ReadBits(reader);
  if (!bits.ok()) return bits.status();
  auto rows = reader.ReadU64();
  if (!rows.ok()) return rows.status();
  auto upper = reader.ReadU64();
  if (!upper.ok()) return upper.status();

  QuantizedSymmetricCsr q;
  q.bits_ = bits.value();
  q.rows_ = static_cast<std::size_t>(rows.value());
  const std::size_t n = q.rows_;
  const std::size_t upper_nnz = static_cast<std::size_t>(upper.value());
  const std::size_t entry_width =
      sizeof(std::uint32_t) + (q.bits_ == QuantizationBits::kU8 ? 1 : 2);
  // Everything after the header has a computable lower bound; reject
  // absurd counts before they drive allocations.
  const std::size_t min_bytes =
      n * (2 * sizeof(double) + sizeof(std::uint32_t)) +
      upper_nnz * entry_width;
  if (reader.remaining() < min_bytes) {
    return reader.Truncated(min_bytes, "quantized symmetric CSR body");
  }
  Status s = ReadDoubleVector(reader, n, q.offsets_, "quantized row offsets");
  if (!s.ok()) return s;
  s = ReadDoubleVector(reader, n, q.scales_, "quantized row scales");
  if (!s.ok()) return s;
  s = CheckRowParams(q.offsets_, q.scales_, n, "quantized boundary");
  if (!s.ok()) return s;

  std::vector<std::uint32_t> upper_counts(n);
  std::size_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    auto c = reader.ReadU32();
    if (!c.ok()) return c.status();
    upper_counts[u] = c.value();
    total += c.value();
  }
  if (total != upper_nnz) {
    return Status::IoError("quantized boundary row counts sum to " +
                           std::to_string(total) + ", header says " +
                           std::to_string(upper_nnz));
  }

  // Read the upper triangle, validating strict ordering, then mirror.
  struct UpperEntry {
    std::uint32_t row;
    std::uint32_t col;
    std::size_t code;
  };
  std::vector<UpperEntry> entries;
  entries.reserve(upper_nnz);
  for (std::size_t u = 0; u < n; ++u) {
    std::uint32_t prev = 0;
    bool first = true;
    for (std::uint32_t k = 0; k < upper_counts[u]; ++k) {
      auto col = reader.ReadU32();
      if (!col.ok()) return col.status();
      const std::uint32_t v = col.value();
      if (v <= u || v >= n) {
        return Status::IoError("quantized boundary entry (" +
                               std::to_string(u) + ", " + std::to_string(v) +
                               ") outside the strict upper triangle of " +
                               std::to_string(n) + " rows");
      }
      if (!first && v <= prev) {
        return Status::IoError("quantized boundary columns not strictly "
                               "ascending in row " +
                               std::to_string(u));
      }
      first = false;
      prev = v;
      std::size_t code;
      if (q.bits_ == QuantizationBits::kU8) {
        auto c = reader.ReadU8();
        if (!c.ok()) return c.status();
        code = c.value();
      } else {
        auto c = reader.ReadU16();
        if (!c.ok()) return c.status();
        code = c.value();
      }
      entries.push_back({static_cast<std::uint32_t>(u), v, code});
    }
  }

  // Mirror: count both directions, prefix-sum, scatter in order. The
  // scatter preserves ascending columns because entries arrive sorted
  // by (row, col) and mirrored ones by (col, row).
  q.row_ptr_.assign(n + 1, 0);
  for (const auto& e : entries) {
    ++q.row_ptr_[e.row + 1];
    ++q.row_ptr_[e.col + 1];
  }
  for (std::size_t u = 0; u < n; ++u) q.row_ptr_[u + 1] += q.row_ptr_[u];
  const std::size_t nnz = 2 * upper_nnz;
  q.col_idx_.resize(nnz);
  if (q.bits_ == QuantizationBits::kU8) {
    q.codes8_.resize(nnz);
  } else {
    q.codes16_.resize(nnz);
  }
  std::vector<std::size_t> cursor(q.row_ptr_.begin(), q.row_ptr_.end() - 1);
  auto place = [&](std::uint32_t row, std::uint32_t col, std::size_t code) {
    const std::size_t slot = cursor[row]++;
    q.col_idx_[slot] = col;
    if (q.bits_ == QuantizationBits::kU8) {
      q.codes8_[slot] = static_cast<std::uint8_t>(code);
    } else {
      q.codes16_[slot] = static_cast<std::uint16_t>(code);
    }
  };
  for (const auto& e : entries) place(e.row, e.col, e.code);
  for (const auto& e : entries) place(e.col, e.row, e.code);
  // The second sweep appends mirrored entries (col, row) with row < col
  // ascending, which lands after the upper entries of that row only if
  // the row's upper entries all exceed... they don't: mirrored columns
  // (all < row) must precede upper columns (all > row). Re-sort each
  // row's slice to restore ascending order; slices are tiny.
  for (std::size_t u = 0; u < n; ++u) {
    const std::size_t begin = q.row_ptr_[u];
    const std::size_t end = q.row_ptr_[u + 1];
    std::vector<std::size_t> order(end - begin);
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = begin + k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return q.col_idx_[a] < q.col_idx_[b];
    });
    std::vector<std::uint32_t> cols(end - begin);
    std::vector<std::size_t> codes(end - begin);
    for (std::size_t k = 0; k < order.size(); ++k) {
      cols[k] = q.col_idx_[order[k]];
      codes[k] = q.CodeOf(order[k]);
    }
    for (std::size_t k = 0; k < order.size(); ++k) {
      q.col_idx_[begin + k] = cols[k];
      if (q.bits_ == QuantizationBits::kU8) {
        q.codes8_[begin + k] = static_cast<std::uint8_t>(codes[k]);
      } else {
        q.codes16_[begin + k] = static_cast<std::uint16_t>(codes[k]);
      }
    }
  }
  return q;
}

}  // namespace slampred
