#include "linalg/lu.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

Result<LuResult> ComputeLu(const Matrix& a) {
  if (a.empty() || !a.IsSquare()) {
    return Status::InvalidArgument("LU needs a non-empty square matrix");
  }
  const std::size_t n = a.rows();
  LuResult res;
  res.lu = a;
  res.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) res.perm[i] = i;

  Matrix& m = res.lu;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest |entry| in column k at/below row k.
    std::size_t pivot = k;
    double best = std::fabs(m(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(m(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best == 0.0) {
      return Status::NumericalError("singular matrix in LU at column " +
                                    std::to_string(k));
    }
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(m(k, j), m(pivot, j));
      std::swap(res.perm[k], res.perm[pivot]);
      res.sign = -res.sign;
    }
    const double inv_pivot = 1.0 / m(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = m(i, k) * inv_pivot;
      m(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        m(i, j) -= factor * m(k, j);
      }
    }
  }
  return res;
}

Vector LuSolve(const LuResult& lu, const Vector& b) {
  const std::size_t n = lu.lu.rows();
  SLAMPRED_CHECK(b.size() == n);
  // Apply permutation, then forward- and back-substitute.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[lu.perm[i]];
    for (std::size_t k = 0; k < i; ++k) sum -= lu.lu(i, k) * y[k];
    y[i] = sum;
  }
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= lu.lu(i, k) * x[k];
    x[i] = sum / lu.lu(i, i);
  }
  return x;
}

Matrix LuSolveMatrix(const LuResult& lu, const Matrix& b) {
  SLAMPRED_CHECK(b.rows() == lu.lu.rows());
  Matrix out(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    out.SetCol(j, LuSolve(lu, b.Col(j)));
  }
  return out;
}

double LuDeterminant(const LuResult& lu) {
  double det = static_cast<double>(lu.sign);
  for (std::size_t i = 0; i < lu.lu.rows(); ++i) det *= lu.lu(i, i);
  return det;
}

Result<Matrix> Inverse(const Matrix& a) {
  auto lu = ComputeLu(a);
  if (!lu.ok()) return lu.status();
  return LuSolveMatrix(lu.value(), Matrix::Identity(a.rows()));
}

}  // namespace slampred
