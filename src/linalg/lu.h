// LU factorisation with partial pivoting; general linear solves and
// determinants for the few places that need a non-SPD solve.

#ifndef SLAMPRED_LINALG_LU_H_
#define SLAMPRED_LINALG_LU_H_

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "util/status.h"

namespace slampred {

/// Compact LU factorisation P A = L U with unit-diagonal L stored below
/// the diagonal of `lu` and U stored on/above it.
struct LuResult {
  Matrix lu;                      ///< Packed L (strict lower) and U (upper).
  std::vector<std::size_t> perm;  ///< Row permutation: row i of PA is row perm[i] of A.
  int sign = 1;                   ///< Permutation parity (for determinants).
};

/// Computes the pivoted LU factorisation of the square matrix `a`.
/// Fails with kNumericalError if a zero pivot is met (singular matrix).
Result<LuResult> ComputeLu(const Matrix& a);

/// Solves A x = b given a factorisation of A.
Vector LuSolve(const LuResult& lu, const Vector& b);

/// Solves A X = B column-wise.
Matrix LuSolveMatrix(const LuResult& lu, const Matrix& b);

/// Determinant from the factorisation.
double LuDeterminant(const LuResult& lu);

/// Inverts `a` via LU; fails on singular input.
Result<Matrix> Inverse(const Matrix& a);

}  // namespace slampred

#endif  // SLAMPRED_LINALG_LU_H_
