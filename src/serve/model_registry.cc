#include "serve/model_registry.h"

#include <utility>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

// Translates the "serve.swap" fault site into a swap failure.
Status InjectedSwapFault() {
  switch (SLAMPRED_FAULT_HIT("serve.swap")) {
    case FaultKind::kFailIo:
      return Status::IoError("injected model swap fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError("injected model swap fault");
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected model swap fault");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(options) {}

Status ModelRegistry::Swap(ModelArtifact artifact, CsrMatrix known_links) {
  // Validate by round-tripping through the on-disk form: the parse
  // recomputes every section CRC-32 and re-checks the structural
  // invariants, so only bytes a loader would accept can be published.
  const std::string bytes = SerializeModelArtifact(artifact);
  const std::uint32_t checksum = Crc32(bytes.data(), bytes.size());

  auto publish_failure = [this](Status status) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++recovery_.swap_failures;
    }
    return status;
  };

  // Mid-swap fault window: validation has started, nothing published.
  const Status injected = InjectedSwapFault();
  if (!injected.ok()) return publish_failure(injected);

  auto reparsed = DeserializeModelArtifact(bytes);
  if (!reparsed.ok()) return publish_failure(reparsed.status());
  auto session = ScoringSession::FromArtifact(std::move(reparsed).value());
  if (!session.ok()) return publish_failure(session.status());

  const std::size_t n = session.value().num_users();
  if (known_links.rows() != 0 &&
      (known_links.rows() != n || known_links.cols() != n)) {
    return publish_failure(Status::InvalidArgument(
        "known-links adjacency is " + std::to_string(known_links.rows()) +
        "x" + std::to_string(known_links.cols()) +
        " but the artifact serves " + std::to_string(n) + " users"));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto model = std::make_shared<const ServableModel>(
      std::move(session).value(), next_version_, checksum,
      std::move(known_links), options_.max_resident_topk_rows);
  ++next_version_;
  current_ = std::move(model);  // Old version drains via shared_ptr.
  return Status::OK();
}

Status ModelRegistry::SwapFromFile(const std::string& path,
                                   CsrMatrix known_links) {
  auto artifact = LoadModelArtifact(path);
  if (!artifact.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_.swap_failures;
    return artifact.status();
  }
  return Swap(std::move(artifact).value(), std::move(known_links));
}

std::shared_ptr<const ServableModel> ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ == nullptr ? 0 : current_->version;
}

std::uint64_t ModelRegistry::swap_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_version_ - 1;
}

RecoveryStats ModelRegistry::recovery() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_;
}

void ModelRegistry::NoteBatchFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.batch_failures;
}

}  // namespace slampred
