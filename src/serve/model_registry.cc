#include "serve/model_registry.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/binary_io.h"
#include "util/fault_injection.h"

namespace slampred {
namespace {

// Translates the "serve.swap" fault site into a swap failure.
Status InjectedSwapFault() {
  switch (SLAMPRED_FAULT_HIT("serve.swap")) {
    case FaultKind::kFailIo:
      return Status::IoError("injected model swap fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError("injected model swap fault");
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected model swap fault");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(options), swap_breaker_(options.breaker) {}

Status ModelRegistry::Swap(ModelArtifact artifact, CsrMatrix known_links) {
  if (!swap_breaker_.AllowRequest()) {
    return Status::Unavailable(
        "swap breaker open after repeated swap failures; serving version " +
        std::to_string(current_version()));
  }
  const Status status =
      SwapValidated(std::move(artifact), std::move(known_links));
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_.swap_failures;
  }
  RecordSwapOutcome(status.ok());
  return status;
}

Status ModelRegistry::SwapValidated(ModelArtifact artifact,
                                    CsrMatrix known_links) {
  // Validate by round-tripping through the on-disk form: the parse
  // recomputes every section CRC-32 and re-checks the structural
  // invariants, so only bytes a loader would accept can be published.
  const std::string bytes = SerializeModelArtifact(artifact);
  const std::uint32_t checksum = Crc32(bytes.data(), bytes.size());

  // Mid-swap fault window: validation has started, nothing published.
  const Status injected = InjectedSwapFault();
  if (!injected.ok()) return injected;

  auto reparsed = DeserializeModelArtifact(bytes);
  if (!reparsed.ok()) return reparsed.status();
  auto session = ScoringSession::FromArtifact(std::move(reparsed).value());
  if (!session.ok()) return session.status();

  const std::size_t n = session.value().num_users();
  if (known_links.rows() != 0 &&
      (known_links.rows() != n || known_links.cols() != n)) {
    return Status::InvalidArgument(
        "known-links adjacency is " + std::to_string(known_links.rows()) +
        "x" + std::to_string(known_links.cols()) +
        " but the artifact serves " + std::to_string(n) + " users");
  }
  ScoringSession live = std::move(session).value();

  // Merge the hot-row cache before publishing, outside the registry
  // lock: artifact-carried rows (float-oracle snapshots written by the
  // quantizer) win; the remaining configured hot users get rows built
  // from the session about to be published, so a quantized swap serves
  // its hot set warm from the first request. Full orders double as
  // TopKIndex seeds below.
  HotRowCache hot_rows;
  if (live.artifact().has_hot_rows) hot_rows = live.artifact().hot_rows;
  std::vector<std::pair<std::uint32_t, TopKRowOrder>> seeds;
  for (const std::uint32_t u : options_.hot_users) {
    if (u >= n || hot_rows.Find(u) != nullptr) continue;
    TopKRowOrder order = BuildTopKRowOrder(live, u);
    HotRow row;
    row.user = u;
    row.complete = order.size() <= options_.hot_row_entries;
    const std::size_t keep =
        std::min(order.size(), options_.hot_row_entries);
    row.entries.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      row.entries.push_back({order[i], live.ScoreUnchecked(u, order[i])});
    }
    hot_rows.AddRow(std::move(row));
    seeds.emplace_back(u, std::move(order));
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto model = std::make_shared<const ServableModel>(
      std::move(live), next_version_, checksum, std::move(known_links),
      options_.max_resident_topk_rows, std::move(hot_rows));

  // Warm the per-version TopK cache: registry-built full orders first
  // (they exist in hand), then artifact-carried complete rows (their
  // entries are the whole order), up to the LRU cap.
  std::size_t seeded = 0;
  for (auto& seed : seeds) {
    if (seeded >= options_.max_resident_topk_rows) break;
    model->topk.Insert(seed.first, std::move(seed.second));
    ++seeded;
  }
  for (const HotRow& row : model->hot_rows.rows()) {
    if (seeded >= options_.max_resident_topk_rows) break;
    if (!row.complete || model->topk.Peek(row.user) != nullptr) continue;
    TopKRowOrder order;
    order.reserve(row.entries.size());
    for (const HotRowEntry& entry : row.entries) order.push_back(entry.v);
    model->topk.Insert(row.user, std::move(order));
    ++seeded;
  }

  ++next_version_;
  current_ = std::move(model);  // Old version drains via shared_ptr.
  return Status::OK();
}

Status ModelRegistry::SwapShard(std::size_t shard_index, ModelShard shard) {
  if (!swap_breaker_.AllowRequest()) {
    return Status::Unavailable(
        "swap breaker open after repeated swap failures; serving version " +
        std::to_string(current_version()));
  }
  const std::shared_ptr<const ServableModel> current = Acquire();
  Status status = Status::OK();
  if (current == nullptr) {
    status = Status::FailedPrecondition(
        "no model published; Swap a full sharded artifact in first");
  } else if (!current->session.artifact().has_shards) {
    status = Status::FailedPrecondition(
        "published artifact is not sharded; SwapShard needs a partitioned "
        "model");
  } else {
    // Copy-on-swap: the published model stays immutable; the candidate
    // artifact (other shards + boundary included) re-validates as a
    // whole before publishing.
    ModelArtifact candidate = current->session.artifact();
    status = candidate.shards.ReplaceShard(shard_index, std::move(shard));
    if (status.ok()) {
      status = SwapValidated(std::move(candidate), current->known_links);
    }
  }
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_.swap_failures;
  }
  RecordSwapOutcome(status.ok());
  return status;
}

Status ModelRegistry::SwapFromFile(const std::string& path,
                                   CsrMatrix known_links) {
  if (!swap_breaker_.AllowRequest()) {
    return Status::Unavailable(
        "swap breaker open after repeated swap failures; serving version " +
        std::to_string(current_version()));
  }

  // Primary path with a deterministic retry budget: a torn write or a
  // transient read fault often clears within the backoff window.
  Status last = Status::OK();
  std::chrono::milliseconds backoff = options_.swap_retry_backoff;
  const int attempts = 1 + std::max(options_.swap_retry_attempts, 0);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    auto artifact = LoadModelArtifact(path);
    if (!artifact.ok()) {
      last = artifact.status();
      continue;
    }
    last = SwapValidated(std::move(artifact).value(), known_links);
    if (last.ok()) {
      RecordSwapOutcome(true);
      return last;
    }
  }

  // The primary failed for good: one swap_failure for the whole
  // operation, then roll back to the last-good sidecar so serving keeps
  // a valid (if older) model published.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++recovery_.swap_failures;
  }
  auto fallback = LoadModelArtifact(LastGoodArtifactPath(path));
  if (fallback.ok()) {
    const Status rolled_back =
        SwapValidated(std::move(fallback).value(), std::move(known_links));
    if (rolled_back.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++recovery_.artifact_rollbacks;
      }
      RecordSwapOutcome(true);
      return Status::OK();
    }
  }
  RecordSwapOutcome(false);
  return last;
}

std::shared_ptr<const ServableModel> ModelRegistry::Acquire() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

std::uint64_t ModelRegistry::current_version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_ == nullptr ? 0 : current_->version;
}

std::uint64_t ModelRegistry::swap_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_version_ - 1;
}

RecoveryStats ModelRegistry::recovery() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recovery_;
}

void ModelRegistry::NoteBatchFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.batch_failures;
}

void ModelRegistry::NoteShed() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.shed;
}

void ModelRegistry::NoteDeadlineExceeded() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.deadline_exceeded;
}

void ModelRegistry::NoteBreakerTrip() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.breaker_trips;
}

void ModelRegistry::NoteDegradedResponse() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recovery_.degraded_responses;
}

void ModelRegistry::RecordSwapOutcome(bool ok) {
  if (ok) {
    swap_breaker_.RecordSuccess();
    return;
  }
  if (swap_breaker_.RecordFailure()) NoteBreakerTrip();
}

}  // namespace slampred
