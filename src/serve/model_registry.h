// ModelRegistry — shared-ownership registry of the artifact a serving
// process is currently answering from, with atomic hot-swap.
//
// Requests Acquire() an immutable ServableModel snapshot and score
// against it; Swap() validates a new artifact (full checksum + invariant
// re-verification via a serialize→parse round trip, plus the
// "serve.swap" fault site) and publishes it atomically. In-flight
// requests keep their snapshot alive through shared_ptr ownership, so an
// old version drains naturally: it is destroyed when its last in-flight
// request finishes, and no request ever observes a half-swapped model.
// A failed swap leaves the previous model serving untouched and is
// counted in RecoveryStats::swap_failures.
//
// The swap path is additionally guarded by a circuit breaker: after
// `breaker.failure_threshold` consecutive failed swaps the registry
// stops attempting swaps (fast kUnavailable, last-good model keeps
// serving) until the breaker's exponential backoff elapses and a
// half-open probe succeeds. SwapFromFile layers crash-safe recovery on
// top: a torn or corrupt file is retried with a doubling backoff, then
// rolled back to the `.last_good` sidecar WriteArtifactAtomic published
// alongside the primary (counted in RecoveryStats::artifact_rollbacks).

#ifndef SLAMPRED_SERVE_MODEL_REGISTRY_H_
#define SLAMPRED_SERVE_MODEL_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/hot_row_cache.h"
#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "linalg/csr_matrix.h"
#include "optim/guardrails.h"
#include "serve/circuit_breaker.h"
#include "serve/topk_index.h"
#include "util/status.h"

namespace slampred {

/// One published model version: an immutable scoring session plus the
/// per-version serving state (top-K row cache, exclusion adjacency).
/// Always held behind shared_ptr<const ServableModel>.
struct ServableModel {
  ServableModel(ScoringSession session_in, std::uint64_t version_in,
                std::uint32_t checksum_in, CsrMatrix known_links_in,
                std::size_t max_topk_rows, HotRowCache hot_rows_in = {})
      : session(std::move(session_in)),
        version(version_in),
        checksum(checksum_in),
        known_links(std::move(known_links_in)),
        hot_rows(std::move(hot_rows_in)),
        topk(max_topk_rows) {}

  ServableModel(const ServableModel&) = delete;
  ServableModel& operator=(const ServableModel&) = delete;

  /// Order of the served score matrix.
  std::size_t num_users() const { return session.num_users(); }

  const ScoringSession session;
  /// Monotonic registry version; every response reports the version it
  /// was answered from.
  const std::uint64_t version;
  /// CRC-32 of the full serialized artifact, recomputed at swap time.
  const std::uint32_t checksum;
  /// Known-link adjacency for TopK exclusion (empty = no exclusions).
  const CsrMatrix known_links;
  /// Precomputed top-K row prefixes for the hot-user set, merged at
  /// swap time from the artifact-carried cache (float-oracle snapshots)
  /// and the registry's configured hot users. A top-K served from here
  /// reports tier `cached` and never touches the score payload.
  const HotRowCache hot_rows;
  /// Top-K responses answered from `hot_rows`.
  mutable std::atomic<std::uint64_t> hot_hits{0};
  /// Lazily-built per-row top-K order cache (interior mutex).
  mutable TopKIndex topk;
};

/// Registry construction knobs.
struct ModelRegistryOptions {
  /// LRU cap on resident top-K rows per model version.
  std::size_t max_resident_topk_rows = 64;
  /// Users whose top-K rows are precomputed at swap time, before the
  /// new version starts answering. Rows already carried by the artifact
  /// (written by the quantizer from the float scores) are kept as-is;
  /// rows for the remaining users here are built from the published
  /// session. Full orders also warm the TopKIndex up to its LRU cap.
  std::vector<std::uint32_t> hot_users;
  /// Entries kept per precomputed hot row (the served prefix).
  std::size_t hot_row_entries = 256;
  /// Extra SwapFromFile attempts after the first failure (the
  /// deterministic retry budget for torn/transient artifact reads).
  int swap_retry_attempts = 2;
  /// Sleep before the first retry; doubles per retry.
  std::chrono::milliseconds swap_retry_backoff{1};
  /// Circuit breaker guarding the swap path.
  CircuitBreakerOptions breaker;
};

/// Thread-safe owner of the current ServableModel.
class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Validates `artifact` and atomically publishes it as the next
  /// version. Validation re-serializes the artifact and re-parses the
  /// bytes, so every section CRC-32 and structural invariant is checked
  /// against exactly what a loader would accept; the "serve.swap" fault
  /// site fires between validation and publish. On any failure the
  /// previously published model keeps serving and swap_failures is
  /// incremented. `known_links`, when non-empty, must be a square
  /// matrix of the artifact's order; it backs TopK known-link exclusion.
  /// While the swap breaker is open, returns kUnavailable immediately
  /// without attempting the swap (not counted as a swap failure).
  Status Swap(ModelArtifact artifact, CsrMatrix known_links = {});

  /// Loads the artifact at `path` (offset-diagnosed kIoError on
  /// corruption) and Swap()s it in. On failure, retries the load+swap up
  /// to `swap_retry_attempts` more times with a doubling backoff, then
  /// falls back to the `.last_good` sidecar (see WriteArtifactAtomic);
  /// a successful rollback publishes the sidecar, increments
  /// RecoveryStats::artifact_rollbacks, and returns OK. One swap_failure
  /// is counted per failed primary path regardless of retry count.
  Status SwapFromFile(const std::string& path, CsrMatrix known_links = {});

  /// Republishes the current sharded artifact with shard `shard_index`
  /// replaced by `shard` — the per-shard hot-swap of the hierarchical
  /// partitioned solve: only the refitted cluster's block ships, the
  /// other shards, the boundary CSR and the known-links adjacency carry
  /// over unchanged. The replacement must cover exactly the same users
  /// (a shard swap never changes the partition) and goes through the
  /// same validation round trip, fault site, breaker and failure
  /// accounting as a full Swap. kFailedPrecondition when nothing is
  /// published or the current artifact is not sharded.
  Status SwapShard(std::size_t shard_index, ModelShard shard);

  /// The currently published model, or nullptr before the first
  /// successful Swap. The returned snapshot stays valid (and immutable)
  /// for as long as the caller holds it, across any number of swaps.
  std::shared_ptr<const ServableModel> Acquire() const;

  /// Version of the currently published model (0 before the first).
  std::uint64_t current_version() const;

  /// Number of successfully published versions.
  std::uint64_t swap_count() const;

  /// Serving-side recovery counters (swap/batch failures, shed,
  /// deadline, breaker, degraded-tier and rollback counts).
  RecoveryStats recovery() const;

  /// Counts a failed batch dispatch (called by BatchScorer).
  void NoteBatchFailure();

  /// Counts a request rejected by admission control.
  void NoteShed();

  /// Counts a request shed because its deadline passed.
  void NoteDeadlineExceeded();

  /// Counts a circuit-breaker trip (swap or batch breaker).
  void NoteBreakerTrip();

  /// Counts a response answered off the full path (cached or degraded).
  void NoteDegradedResponse();

  /// The swap-path circuit breaker (read-only introspection).
  const CircuitBreaker& swap_breaker() const { return swap_breaker_; }

 private:
  /// Validation + publish, shared by Swap and SwapFromFile. Touches
  /// neither the counters nor the breaker — callers count one
  /// swap_failure per failed public operation, not per attempt.
  Status SwapValidated(ModelArtifact artifact, CsrMatrix known_links);

  /// Feeds a swap outcome into the breaker, counting any trip.
  void RecordSwapOutcome(bool ok);

  const ModelRegistryOptions options_;
  CircuitBreaker swap_breaker_;
  mutable std::mutex mutex_;
  std::shared_ptr<const ServableModel> current_;  // Guarded by mutex_.
  std::uint64_t next_version_ = 1;                // Guarded by mutex_.
  RecoveryStats recovery_;                        // Guarded by mutex_.
};

}  // namespace slampred

#endif  // SLAMPRED_SERVE_MODEL_REGISTRY_H_
