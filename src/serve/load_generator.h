// In-process load generator for the concurrent serving layer — the
// measurement half of `slampred_cli serve-bench`. Drives a
// ScoringService with a mixed Score/TopK workload from concurrent
// callers, optionally hot-swapping the model mid-run, and reports
// throughput plus p50/p95/p99 latency (emitted as BENCH_serve.json by
// the CLI).
//
// Closed loop: `concurrency` caller threads issue back-to-back requests
// until the deadline — measures peak sustainable throughput. Open loop:
// requests arrive on a fixed schedule (`open_rate_rps`) and run as
// thread-pool tasks; latency is measured from the *scheduled* arrival,
// so queueing delay under overload is visible instead of coordinated
// away.
//
// Overload and chaos features: per-request deadlines (`deadline_ms`),
// an error taxonomy broken down by status code, per-tier response
// counts, and a chaos mode that arms the serve.swap / serve.batch /
// artifact.read fault sites at a deterministic cadence for the run and
// verifies response invariants (every full-tier response bit-matches
// the served artifact) — the measurement half of
// `slampred_cli serve-bench --chaos`.

#ifndef SLAMPRED_SERVE_LOAD_GENERATOR_H_
#define SLAMPRED_SERVE_LOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/scoring_service.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace slampred {

/// Workload shape for one load-generator run.
struct LoadGeneratorOptions {
  enum class Mode { kClosed, kOpen };

  Mode mode = Mode::kClosed;
  /// Caller threads (closed loop).
  std::size_t concurrency = 4;
  /// Wall-clock run length.
  double duration_seconds = 2.0;
  /// Arrival rate in requests/sec (open loop).
  double open_rate_rps = 2000.0;
  /// Pairs per ScorePairs request.
  std::size_t pairs_per_request = 64;
  /// Every Nth request is a TopK instead of a ScorePairs (0 = never).
  std::size_t topk_every = 4;
  /// k of the TopK requests.
  std::size_t top_k = 10;
  /// > 0: a swapper thread republishes the current artifact as a new
  /// version this often — the hot-swap-under-load scenario.
  double swap_every_seconds = 0.0;
  /// Seed of the deterministic per-thread request streams.
  std::uint64_t seed = 42;
  /// > 0: every request carries a deadline this many ms after issue.
  double deadline_ms = 0.0;
  /// Non-empty: the swapper republishes via SwapFromFile(swap_path)
  /// instead of an in-memory Swap, exercising the artifact.read site
  /// and last_good rollback. The file must hold the served artifact.
  std::string swap_path;
  /// Arms the serve.swap / serve.batch / artifact.read fault sites at a
  /// deterministic cadence for the duration of the run (disarmed again
  /// before returning) and turns `verify` on.
  bool chaos = false;
  /// Verifies every full-tier response against the initially published
  /// score matrix (valid because the swapper republishes the same
  /// artifact); mismatches are counted as invariant violations.
  bool verify = false;
};

/// Latency distribution over all completed requests.
struct LatencySummary {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Errors broken down by status code (sums to the report's `errors`).
struct LoadErrorBreakdown {
  std::size_t deadline_exceeded = 0;  ///< kDeadlineExceeded.
  std::size_t shed = 0;               ///< kResourceExhausted.
  std::size_t io = 0;                 ///< kIoError.
  std::size_t numerical = 0;          ///< kNumericalError.
  std::size_t unavailable = 0;        ///< kUnavailable.
  std::size_t other = 0;              ///< Everything else.
};

/// Successful responses broken down by the tier that answered them.
struct ServeTierCounts {
  std::size_t full = 0;
  std::size_t cached = 0;
  std::size_t degraded = 0;
};

/// Outcome of one run.
struct LoadGeneratorReport {
  std::string mode;
  std::size_t concurrency = 0;
  bool batching = false;
  std::size_t requests = 0;
  std::size_t score_requests = 0;
  std::size_t topk_requests = 0;
  std::size_t errors = 0;
  LoadErrorBreakdown error_breakdown;
  ServeTierCounts tiers;
  /// Full-tier responses that failed verification (verify mode only;
  /// must stay 0 — the chaos CI leg asserts on it).
  std::size_t invariant_violations = 0;
  std::uint64_t swaps = 0;          ///< Successful mid-run hot-swaps.
  std::uint64_t final_version = 0;  ///< Registry version after the run.
  /// Quantized-serving accounting. `artifact_bytes` is the serialized
  /// size of the served artifact and `float_equiv_bytes` what the same
  /// model costs in float form (equal when serving float; filled by the
  /// CLI, which knows both files). `hot_rows` / `hot_hits` count the
  /// precomputed hot-user cache and the top-K responses it answered;
  /// `cache_hit_rate` is tiers.cached / topk_requests. `auc` is the
  /// sampled link-prediction AUC of the served scores against the
  /// observed graph (−1 when not computed).
  std::uint64_t artifact_bytes = 0;
  std::uint64_t float_equiv_bytes = 0;
  std::size_t hot_rows = 0;
  std::uint64_t hot_hits = 0;
  double cache_hit_rate = 0.0;
  double auc = -1.0;
  /// Registry recovery counters at the end of the run.
  RecoveryStats recovery;
  double duration_seconds = 0.0;
  double throughput_rps = 0.0;
  LatencySummary latency;

  /// One JSON object (the BENCH_serve.json payload).
  std::string ToJson() const;

  /// Human-readable multi-line summary.
  std::string ToString() const;
};

/// Runs the workload against `service`, swapping through `registry`
/// when configured. Requires a published model; fails fast otherwise.
Result<LoadGeneratorReport> RunLoadGenerator(
    ModelRegistry& registry, ScoringService& service,
    const LoadGeneratorOptions& options);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_LOAD_GENERATOR_H_
