#include "serve/topk_index.h"

#include <algorithm>
#include <utility>

#include "core/scoring_session.h"

namespace slampred {
namespace {

// One (column, score) candidate of a sharded row merge.
struct RankedColumn {
  std::uint32_t column;
  double score;
};

// The shared retrieval order: descending score, ascending column on
// ties — identical to the dense builder's comparator.
bool RankedBefore(const RankedColumn& a, const RankedColumn& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.column < b.column;
}

// Sharded row build: merge three sequences that are each already in
// retrieval order — the own-shard block row (sorted here), the boundary
// row (sorted here), and the implicit zero tail of columns neither
// covers (ascending column == retrieval order at equal score 0). The
// merge is O(n + m log m) for m covered columns instead of the
// O(n log n) full-row argsort.
TopKRowOrder BuildShardedRowOrder(const ShardedScores& shards,
                                  std::size_t u) {
  const std::size_t n = shards.num_users();
  const ModelShard& own = shards.shards()[shards.shard_of(u)];
  const std::size_t lu = shards.local_index(u);

  std::vector<bool> covered(n, false);
  covered[u] = true;

  std::vector<RankedColumn> block;
  block.reserve(own.users.size());
  for (std::size_t j = 0; j < own.users.size(); ++j) {
    const std::uint32_t v = own.users[j];
    if (v == u) continue;
    covered[v] = true;
    block.push_back({v, own.At(lu, j)});
  }
  std::sort(block.begin(), block.end(), RankedBefore);

  std::vector<RankedColumn> cross;
  if (shards.has_quantized_boundary()) {
    const QuantizedSymmetricCsr& boundary = shards.quantized_boundary();
    cross.reserve(boundary.RowNnz(u));
    boundary.ForEachInRow(u, [&](std::uint32_t v, double score) {
      if (covered[v]) return;  // Own shard (or self) wins.
      covered[v] = true;
      cross.push_back({v, score});
    });
    std::sort(cross.begin(), cross.end(), RankedBefore);
  } else if (shards.boundary().rows() != 0) {
    const CsrMatrix& boundary = shards.boundary();
    const auto& row_ptr = boundary.row_ptr();
    const auto& col_idx = boundary.col_idx();
    const auto& values = boundary.values();
    cross.reserve(row_ptr[u + 1] - row_ptr[u]);
    for (std::size_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      const std::uint32_t v = static_cast<std::uint32_t>(col_idx[e]);
      if (covered[v]) continue;  // Own shard (or self) wins.
      covered[v] = true;
      cross.push_back({v, values[e]});
    }
    std::sort(cross.begin(), cross.end(), RankedBefore);
  }

  // The zero tail: every still-uncovered column scores 0, and ascending
  // column order is retrieval order within the tie.
  std::vector<std::uint32_t> tail;
  tail.reserve(n - 1 - block.size() - cross.size());
  for (std::size_t v = 0; v < n; ++v) {
    if (!covered[v]) tail.push_back(static_cast<std::uint32_t>(v));
  }

  TopKRowOrder order;
  order.reserve(n - 1);
  std::size_t bi = 0, ci = 0, ti = 0;
  while (order.size() < n - 1) {
    // Pick the earliest of the three heads under the retrieval order.
    int source = -1;
    RankedColumn best{0, 0.0};
    if (bi < block.size()) {
      best = block[bi];
      source = 0;
    }
    if (ci < cross.size() &&
        (source < 0 || RankedBefore(cross[ci], best))) {
      best = cross[ci];
      source = 1;
    }
    if (ti < tail.size()) {
      const RankedColumn zero{tail[ti], 0.0};
      if (source < 0 || RankedBefore(zero, best)) {
        best = zero;
        source = 2;
      }
    }
    order.push_back(best.column);
    if (source == 0) ++bi;
    else if (source == 1) ++ci;
    else ++ti;
  }
  return order;
}

}  // namespace

TopKRowOrder BuildTopKRowOrder(const Matrix& s, std::size_t u) {
  const std::size_t n = s.cols();
  TopKRowOrder order;
  order.reserve(n == 0 ? 0 : n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (v != u) order.push_back(static_cast<std::uint32_t>(v));
  }
  const double* row = s.data().data() + u * n;
  std::sort(order.begin(), order.end(),
            [row](std::uint32_t a, std::uint32_t b) {
              if (row[a] != row[b]) return row[a] > row[b];
              return a < b;  // Deterministic tie-break.
            });
  return order;
}

TopKRowOrder BuildTopKRowOrder(const ScoringSession& session, std::size_t u) {
  switch (session.backend()) {
    case ScoringSession::Backend::kDense:
      return BuildTopKRowOrder(session.artifact().s, u);
    case ScoringSession::Backend::kSharded:
      return BuildShardedRowOrder(session.artifact().shards, u);
    case ScoringSession::Backend::kFactored:
    case ScoringSession::Backend::kQuantized:
      // Both serve through the generic RowScores argsort below: the
      // factored row is O(n·r) to materialise, the quantized one a
      // dequantizing stream.
      break;
  }
  const std::size_t n = session.num_users();
  std::vector<double> row;
  session.RowScores(u, row);
  TopKRowOrder order;
  order.reserve(n == 0 ? 0 : n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (v != u) order.push_back(static_cast<std::uint32_t>(v));
  }
  std::sort(order.begin(), order.end(),
            [&row](std::uint32_t a, std::uint32_t b) {
              if (row[a] != row[b]) return row[a] > row[b];
              return a < b;
            });
  return order;
}

TopKIndex::TopKIndex(std::size_t max_resident_rows)
    : max_resident_rows_(max_resident_rows == 0 ? 1 : max_resident_rows) {}

std::shared_ptr<const TopKRowOrder> TopKIndex::CachedRow(
    std::size_t u, const std::function<TopKRowOrder()>& build) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(u);
    if (it != rows_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.order;
    }
  }

  // Build outside the lock: concurrent misses on different rows sort in
  // parallel. A racing build of the same row produces the identical
  // order; the first insert wins and the loser adopts it.
  auto built = std::make_shared<const TopKRowOrder>(build());

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(u);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.order;
  }
  ++builds_;
  lru_.push_front(u);
  rows_.emplace(u, Entry{built, lru_.begin()});
  while (rows_.size() > max_resident_rows_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
    ++evictions_;
  }
  return built;
}

std::shared_ptr<const TopKRowOrder> TopKIndex::Row(const Matrix& s,
                                                   std::size_t u) {
  return CachedRow(u, [&s, u] { return BuildTopKRowOrder(s, u); });
}

std::shared_ptr<const TopKRowOrder> TopKIndex::Row(
    const ScoringSession& session, std::size_t u) {
  return CachedRow(u,
                   [&session, u] { return BuildTopKRowOrder(session, u); });
}

void TopKIndex::Insert(std::size_t u, TopKRowOrder order) {
  auto built = std::make_shared<const TopKRowOrder>(std::move(order));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(u);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(u);
  rows_.emplace(u, Entry{std::move(built), lru_.begin()});
  while (rows_.size() > max_resident_rows_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
    ++evictions_;
  }
}

std::shared_ptr<const TopKRowOrder> TopKIndex::Peek(std::size_t u) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(u);
  return it == rows_.end() ? nullptr : it->second.order;
}

std::size_t TopKIndex::resident_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::size_t TopKIndex::builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return builds_;
}

std::size_t TopKIndex::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace slampred
