#include "serve/topk_index.h"

#include <algorithm>

namespace slampred {

TopKRowOrder BuildTopKRowOrder(const Matrix& s, std::size_t u) {
  const std::size_t n = s.cols();
  TopKRowOrder order;
  order.reserve(n == 0 ? 0 : n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (v != u) order.push_back(static_cast<std::uint32_t>(v));
  }
  const double* row = s.data().data() + u * n;
  std::sort(order.begin(), order.end(),
            [row](std::uint32_t a, std::uint32_t b) {
              if (row[a] != row[b]) return row[a] > row[b];
              return a < b;  // Deterministic tie-break.
            });
  return order;
}

TopKIndex::TopKIndex(std::size_t max_resident_rows)
    : max_resident_rows_(max_resident_rows == 0 ? 1 : max_resident_rows) {}

std::shared_ptr<const TopKRowOrder> TopKIndex::Row(const Matrix& s,
                                                   std::size_t u) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rows_.find(u);
    if (it != rows_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.order;
    }
  }

  // Build outside the lock: concurrent misses on different rows sort in
  // parallel. A racing build of the same row produces the identical
  // order; the first insert wins and the loser adopts it.
  auto built = std::make_shared<const TopKRowOrder>(BuildTopKRowOrder(s, u));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(u);
  if (it != rows_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.order;
  }
  ++builds_;
  lru_.push_front(u);
  rows_.emplace(u, Entry{built, lru_.begin()});
  while (rows_.size() > max_resident_rows_) {
    const std::size_t victim = lru_.back();
    lru_.pop_back();
    rows_.erase(victim);
    ++evictions_;
  }
  return built;
}

std::shared_ptr<const TopKRowOrder> TopKIndex::Peek(std::size_t u) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(u);
  return it == rows_.end() ? nullptr : it->second.order;
}

std::size_t TopKIndex::resident_rows() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::size_t TopKIndex::builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return builds_;
}

std::size_t TopKIndex::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace slampred
