#include "serve/artifact_quantizer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/hot_row_cache.h"
#include "core/scoring_session.h"
#include "serve/topk_index.h"

namespace slampred {
namespace {

// The hot-user ids actually snapshotted: the explicit set when given
// (in-range ids only, duplicates dropped), else the first `count` ids.
std::vector<std::uint32_t> ResolveHotUsers(
    const ArtifactQuantizerOptions& options, std::size_t n) {
  std::vector<std::uint32_t> users;
  if (!options.hot_user_ids.empty()) {
    users = options.hot_user_ids;
    std::sort(users.begin(), users.end());
    users.erase(std::unique(users.begin(), users.end()), users.end());
    while (!users.empty() && users.back() >= n) users.pop_back();
    return users;
  }
  const std::size_t count = std::min(options.hot_user_count, n);
  users.reserve(count);
  for (std::size_t u = 0; u < count; ++u) {
    users.push_back(static_cast<std::uint32_t>(u));
  }
  return users;
}

// Snapshots the hot rows from the float session — the oracle order and
// the oracle scores, taken before the float payload is dropped.
HotRowCache SnapshotHotRows(const ScoringSession& session,
                            const std::vector<std::uint32_t>& users,
                            std::size_t max_entries) {
  HotRowCache cache;
  for (const std::uint32_t u : users) {
    TopKRowOrder order = BuildTopKRowOrder(session, u);
    HotRow row;
    row.user = u;
    row.complete = order.size() <= max_entries;
    const std::size_t keep = std::min(order.size(), max_entries);
    row.entries.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      row.entries.push_back({order[i], session.ScoreUnchecked(u, order[i])});
    }
    cache.AddRow(std::move(row));
  }
  return cache;
}

// Densifies one shard's score block (dense copy or factored product).
Matrix DensifyShardBlock(const ModelShard& shard) {
  const std::size_t m = shard.num_users();
  Matrix block(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) block(i, j) = shard.At(i, j);
  }
  return block;
}

}  // namespace

Result<ModelArtifact> QuantizeModelArtifact(
    ModelArtifact artifact, const ArtifactQuantizerOptions& options,
    ArtifactQuantizeReport* report) {
  if (artifact.has_quantized_s ||
      (artifact.has_shards && artifact.shards.IsQuantized())) {
    return Status::FailedPrecondition(
        "artifact is already quantized; quantization starts from the "
        "float form");
  }

  std::uint64_t float_bytes = 0;
  if (report != nullptr) {
    float_bytes = SerializeModelArtifact(artifact).size();
  }

  // Wrapping the input in a session both validates it as servable and
  // gives the float oracle the hot rows are snapshotted from.
  auto session = ScoringSession::FromArtifact(std::move(artifact));
  if (!session.ok()) return session.status();
  const ScoringSession& oracle = session.value();
  const ModelArtifact& input = oracle.artifact();
  const std::size_t n = oracle.num_users();

  const std::vector<std::uint32_t> hot_users = ResolveHotUsers(options, n);
  HotRowCache hot_rows =
      SnapshotHotRows(oracle, hot_users, options.hot_row_entries);

  ModelArtifact out;
  out.config = input.config;
  out.adapted_tensors = input.adapted_tensors;
  out.has_adapted_tensors = input.has_adapted_tensors;

  if (input.has_shards) {
    // Per-cluster blocks quantize as canonical upper triangles and the
    // boundary CSR as a quantized symmetric CSR — nothing n²-sized is
    // ever materialised.
    std::vector<ModelShard> shards;
    shards.reserve(input.shards.num_shards());
    for (std::size_t s = 0; s < input.shards.num_shards(); ++s) {
      const ModelShard& shard = input.shards.shards()[s];
      auto block =
          QuantizedSymmetricDense::FromMatrix(DensifyShardBlock(shard),
                                              options.bits);
      if (!block.ok()) {
        return Status(block.status().code(),
                      "shard " + std::to_string(s) + ": " +
                          std::string(block.status().message()));
      }
      ModelShard quantized;
      quantized.users = shard.users;
      quantized.quantized = std::move(block).value();
      quantized.has_quantized = true;
      shards.push_back(std::move(quantized));
    }
    auto assembled = ShardedScores::Create(std::move(shards), CsrMatrix{}, n);
    if (!assembled.ok()) return assembled.status();
    out.shards = std::move(assembled).value();
    if (input.shards.boundary().rows() != 0) {
      auto boundary =
          QuantizedSymmetricCsr::FromCsr(input.shards.boundary(),
                                         options.bits);
      if (!boundary.ok()) {
        return Status(boundary.status().code(),
                      "boundary: " +
                          std::string(boundary.status().message()));
      }
      const Status attached =
          out.shards.AttachQuantizedBoundary(std::move(boundary).value());
      if (!attached.ok()) return attached;
    }
    out.has_shards = true;
  } else if (input.s.empty() && input.has_low_rank) {
    // Factored-densified: materialise S = U·Vᵀ once (the documented
    // O(n²) transient), then quantize it like a dense model.
    Matrix dense(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        dense(i, j) = input.low_rank.At(i, j);
      }
    }
    auto quantized = QuantizedMatrix::FromMatrix(dense, options.bits);
    if (!quantized.ok()) return quantized.status();
    out.quantized_s = std::move(quantized).value();
    out.has_quantized_s = true;
  } else {
    auto quantized = QuantizedMatrix::FromMatrix(input.s, options.bits);
    if (!quantized.ok()) return quantized.status();
    out.quantized_s = std::move(quantized).value();
    out.has_quantized_s = true;
  }

  out.hot_rows = std::move(hot_rows);
  out.has_hot_rows = !out.hot_rows.empty();

  if (report != nullptr) {
    report->bits = options.bits;
    report->float_bytes = float_bytes;
    report->quantized_bytes = SerializeModelArtifact(out).size();
    report->hot_rows = out.hot_rows.size();
  }
  return out;
}

}  // namespace slampred
