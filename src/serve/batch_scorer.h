// BatchScorer — coalesces many small concurrent ScorePairs / TopK
// requests into batches dispatched over the shared thread pool.
//
// Leader–follower protocol: a caller enqueues its request and waits; the
// first caller that finds no dispatch in flight and either the queued
// work above max_batch_pairs or its own max_wait expired becomes the
// leader, claims a FIFO slice of the queue, Acquire()s ONE model
// snapshot for the whole batch (so a batch can never mix versions, even
// mid-hot-swap), scores it, and wakes every claimed caller.
//
// Determinism: scoring is a pure per-element lookup fanned out with the
// deterministic ParallelFor, so responses are bit-identical to the
// serial ScoringSession oracle regardless of batching, coalescing
// boundaries, or thread count. Disabling batching routes each request
// through the same dispatch code as a batch of one.
//
// The "serve.batch" fault site fires once per dispatch; an injected
// fault fails every request of that batch (counted in
// RecoveryStats::batch_failures) and the next dispatch proceeds
// normally.

#ifndef SLAMPRED_SERVE_BATCH_SCORER_H_
#define SLAMPRED_SERVE_BATCH_SCORER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/model_registry.h"
#include "serve/scoring_kernels.h"
#include "util/status.h"

namespace slampred {

/// Batching knobs.
struct BatchScorerOptions {
  /// Off = every request dispatches immediately as a batch of one
  /// (identical results, no coalescing latency).
  bool enabled = true;
  /// Dispatch as soon as the queued pair count reaches this.
  std::size_t max_batch_pairs = 1024;
  /// Cap on requests coalesced into one dispatch.
  std::size_t max_batch_requests = 256;
  /// A request waits at most this long to be coalesced before its
  /// caller dispatches whatever is queued.
  std::chrono::microseconds max_wait{500};
};

/// Thread-safe batching front end over a ModelRegistry.
class BatchScorer {
 public:
  BatchScorer(ModelRegistry* registry, BatchScorerOptions options = {});

  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;

  /// Scores `pairs` against one consistent model snapshot. Blocks the
  /// calling thread until its batch is dispatched (bounded by
  /// max_wait + dispatch time). kFailedPrecondition before the first
  /// successful registry swap.
  Result<ScoreBatchResponse> ScorePairs(const std::vector<UserPair>& pairs);

  /// Top-k retrieval for user `u`, batched like ScorePairs.
  Result<TopKResponse> TopK(std::size_t u, std::size_t k,
                            bool exclude_known_links);

  const BatchScorerOptions& options() const { return options_; }

  /// Dispatches performed (each covers >= 1 request).
  std::size_t batches_dispatched() const;

  /// Requests that shared a dispatch with at least one other request.
  std::size_t coalesced_requests() const;

 private:
  struct Request {
    // Inputs.
    const std::vector<UserPair>* pairs = nullptr;  // Null for TopK.
    std::size_t u = 0;
    std::size_t k = 0;
    bool exclude_known_links = false;
    // Outputs — written by the dispatching leader, read by the owner
    // only after observing done == true under the scorer mutex.
    Status status;
    std::vector<double> scores;
    std::vector<TopKEntry> entries;
    std::uint64_t version = 0;
    bool done = false;
  };

  /// Queue weight of a request toward max_batch_pairs.
  static std::size_t Cost(const Request& request);

  /// Enqueues, waits / leads per the protocol above, returns when done.
  void RunQueued(Request& request);

  /// Claims a batch from the queue front and dispatches it. Called with
  /// the lock held; releases it during scoring.
  void DispatchLocked(std::unique_lock<std::mutex>& lock);

  /// Scores one claimed batch against one snapshot (no lock held).
  void ProcessBatch(const std::vector<Request*>& batch);

  ModelRegistry* const registry_;
  const BatchScorerOptions options_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;        // Guarded by mutex_.
  std::size_t queued_pairs_ = 0;      // Guarded by mutex_.
  bool dispatching_ = false;          // Guarded by mutex_.
  std::size_t batches_ = 0;           // Guarded by mutex_.
  std::size_t coalesced_ = 0;         // Guarded by mutex_.
};

}  // namespace slampred

#endif  // SLAMPRED_SERVE_BATCH_SCORER_H_
