// BatchScorer — coalesces many small concurrent ScorePairs / TopK
// requests into batches dispatched over the shared thread pool.
//
// Leader–follower protocol: a caller enqueues its request and waits; the
// first caller that finds no dispatch in flight and either the queued
// work above max_batch_pairs or its own max_wait expired becomes the
// leader, claims a FIFO slice of the queue, Acquire()s ONE model
// snapshot for the whole batch (so a batch can never mix versions, even
// mid-hot-swap), scores it, and wakes every claimed caller.
//
// Determinism: scoring is a pure per-element lookup fanned out with the
// deterministic ParallelFor, so responses are bit-identical to the
// serial ScoringSession oracle regardless of batching, coalescing
// boundaries, or thread count. Disabling batching routes each request
// through the same dispatch code as a batch of one.
//
// The "serve.batch" fault site fires once per dispatch; an injected
// fault fails every request of that batch (counted in
// RecoveryStats::batch_failures) and the next dispatch proceeds
// normally.
//
// Request-lifecycle robustness on top of the protocol:
//
//   * Deadlines — a request whose deadline passes while it is still in
//     the queue is removed (by its owner waking at the deadline, or by
//     the leader at claim time — whichever comes first), counted in
//     RecoveryStats::deadline_exceeded, and answered kDeadlineExceeded
//     without being dispatched. A request already claimed into a batch
//     is always answered by that batch.
//   * Admission control — with queue_cap set, an arrival that finds the
//     queue full is shed per ShedPolicy (the arrival itself, or the
//     oldest queued request making room for it), answered
//     kResourceExhausted and counted in RecoveryStats::shed.
//   * Circuit breaker — `breaker.failure_threshold` consecutive failed
//     dispatches trip the batch breaker; while it is open, batches are
//     answered from the cheap tier (cached top-K rows when resident,
//     else known-links common-neighbor scores) with responses tagged
//     cached/degraded, until a half-open probe dispatch succeeds.

#ifndef SLAMPRED_SERVE_BATCH_SCORER_H_
#define SLAMPRED_SERVE_BATCH_SCORER_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/circuit_breaker.h"
#include "serve/model_registry.h"
#include "serve/scoring_kernels.h"
#include "util/status.h"

namespace slampred {

/// Which request is shed when an arrival finds the admission queue full.
enum class ShedPolicy {
  kRejectNewest,  ///< The arrival is rejected; queued work is kept.
  kRejectOldest,  ///< The oldest queued request is evicted to make room.
};

/// Batching knobs.
struct BatchScorerOptions {
  /// Off = every request dispatches immediately as a batch of one
  /// (identical results, no coalescing latency).
  bool enabled = true;
  /// Dispatch as soon as the queued pair count reaches this.
  std::size_t max_batch_pairs = 1024;
  /// Cap on requests coalesced into one dispatch.
  std::size_t max_batch_requests = 256;
  /// A request waits at most this long to be coalesced before its
  /// caller dispatches whatever is queued.
  std::chrono::microseconds max_wait{500};
  /// Bound on requests waiting in the admission queue (not yet claimed
  /// into a batch); 0 = unbounded (the historical behavior).
  std::size_t queue_cap = 0;
  /// Load-shedding policy applied when the queue is at queue_cap.
  ShedPolicy shed_policy = ShedPolicy::kRejectNewest;
  /// Circuit breaker guarding the full dispatch path.
  CircuitBreakerOptions breaker;
  /// When > 0, a TopK request whose remaining deadline budget is below
  /// this is answered from the cheap tier instead of sorting a full row
  /// (0 = never degrade on deadline pressure alone).
  std::chrono::microseconds degrade_topk_under{0};
};

/// Thread-safe batching front end over a ModelRegistry.
class BatchScorer {
 public:
  BatchScorer(ModelRegistry* registry, BatchScorerOptions options = {});

  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;

  /// Scores `pairs` against one consistent model snapshot. Blocks the
  /// calling thread until its batch is dispatched (bounded by
  /// max_wait + dispatch time, or by the request deadline while still
  /// queued). kFailedPrecondition before the first successful registry
  /// swap; kDeadlineExceeded / kResourceExhausted when shed.
  Result<ScoreBatchResponse> ScorePairs(const std::vector<UserPair>& pairs,
                                        const RequestOptions& request = {});

  /// Top-k retrieval for user `u`, batched like ScorePairs.
  Result<TopKResponse> TopK(std::size_t u, std::size_t k,
                            bool exclude_known_links,
                            const RequestOptions& request = {});

  const BatchScorerOptions& options() const { return options_; }

  /// Dispatches performed (each covers >= 1 request).
  std::size_t batches_dispatched() const;

  /// Requests that shared a dispatch with at least one other request.
  std::size_t coalesced_requests() const;

  /// Requests currently waiting in the admission queue (not yet claimed
  /// into a batch).
  std::size_t queue_depth() const;

  /// The batch-dispatch circuit breaker (read-only introspection).
  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  struct Request {
    // Inputs.
    const std::vector<UserPair>* pairs = nullptr;  // Null for TopK.
    std::size_t u = 0;
    std::size_t k = 0;
    bool exclude_known_links = false;
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    // Outputs — written by the dispatching leader, read by the owner
    // only after observing done == true under the scorer mutex.
    Status status;
    std::vector<double> scores;
    std::vector<TopKEntry> entries;
    std::uint64_t version = 0;
    ServeTier tier = ServeTier::kFull;
    bool done = false;
  };

  /// Queue weight of a request toward max_batch_pairs.
  static std::size_t Cost(const Request& request);

  /// Enqueues, waits / leads per the protocol above, returns when done.
  void RunQueued(Request& request);

  /// Claims a batch from the queue front and dispatches it. Called with
  /// the lock held; releases it during scoring.
  void DispatchLocked(std::unique_lock<std::mutex>& lock);

  /// Scores one claimed batch against one snapshot (no lock held).
  void ProcessBatch(const std::vector<Request*>& batch);

  /// Answers one claimed batch from the cheap tier (breaker open).
  void ProcessBatchCheap(const std::vector<Request*>& batch);

  /// Answers one request off the full path: cached top-K row when
  /// resident, else the degraded common-neighbor kernel.
  void AnswerCheap(const ServableModel& model, Request* request);

  ModelRegistry* const registry_;
  const BatchScorerOptions options_;
  CircuitBreaker breaker_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Request*> queue_;        // Guarded by mutex_.
  std::size_t queued_pairs_ = 0;      // Guarded by mutex_.
  bool dispatching_ = false;          // Guarded by mutex_.
  std::size_t batches_ = 0;           // Guarded by mutex_.
  std::size_t coalesced_ = 0;         // Guarded by mutex_.
};

}  // namespace slampred

#endif  // SLAMPRED_SERVE_BATCH_SCORER_H_
