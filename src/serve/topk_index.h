// Lazily-built per-row top-K retrieval index over a dense score matrix
// S — the serving primitive behind ScoringService::TopK. The first TopK
// touching row u sorts that row's columns once (descending score,
// ascending column on ties, the self column u excluded) and caches the
// sorted order; later queries for any k stream the cached order. An LRU
// cap bounds resident rows so memory stays O(max_resident_rows · n) on
// large models. Rows are handed out as shared_ptr, so eviction never
// invalidates an order a concurrent query is still streaming — eviction
// changes timing only, never results.

#ifndef SLAMPRED_SERVE_TOPK_INDEX_H_
#define SLAMPRED_SERVE_TOPK_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "linalg/matrix.h"

namespace slampred {

class ScoringSession;

/// Sorted column order of one score-matrix row (self excluded).
using TopKRowOrder = std::vector<std::uint32_t>;

/// Thread-safe LRU cache of per-row sorted column orders.
class TopKIndex {
 public:
  /// Caps resident rows at `max_resident_rows` (min 1).
  explicit TopKIndex(std::size_t max_resident_rows = 64);

  /// The full sorted column order of row `u` of `s` (descending score,
  /// ties broken by ascending column, column u itself excluded).
  /// Builds and caches the order on first use; `u` must be < s.rows().
  /// The same `s` must be passed for the lifetime of the index (one
  /// index per model).
  std::shared_ptr<const TopKRowOrder> Row(const Matrix& s, std::size_t u);

  /// Same, over a scoring session of any backend — dense rows sort in
  /// place, factored rows materialise one scratch row, sharded rows
  /// merge the per-shard and boundary orders (see BuildTopKRowOrder).
  /// The same session must be passed for the lifetime of the index.
  std::shared_ptr<const TopKRowOrder> Row(const ScoringSession& session,
                                          std::size_t u);

  /// The cached order of row `u` if resident, else null — never builds.
  /// The cheap-path probe behind the `cached` serve tier: a hit answers
  /// without touching the score matrix beyond the cached order; a miss
  /// tells the caller to fall through to the degraded kernel. Does not
  /// refresh the row's LRU position (a probe is not a use).
  std::shared_ptr<const TopKRowOrder> Peek(std::size_t u) const;

  /// Seeds the cache with an already-built order (swap-time warmup of
  /// hot-user rows). Follows the same first-insert-wins rule as Row: a
  /// resident row is kept, not replaced. Counts as a use for LRU.
  void Insert(std::size_t u, TopKRowOrder order);

  std::size_t max_resident_rows() const { return max_resident_rows_; }

  /// Rows currently resident in the cache.
  std::size_t resident_rows() const;

  /// Total row builds since construction (> resident when evicted rows
  /// were rebuilt).
  std::size_t builds() const;

  /// Rows evicted by the LRU cap.
  std::size_t evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const TopKRowOrder> order;
    std::list<std::size_t>::iterator lru_pos;
  };

  /// The shared LRU path of both Row overloads: returns the resident
  /// order or runs `build` outside the lock (first insert wins).
  std::shared_ptr<const TopKRowOrder> CachedRow(
      std::size_t u, const std::function<TopKRowOrder()>& build);

  const std::size_t max_resident_rows_;
  mutable std::mutex mutex_;
  std::list<std::size_t> lru_;  // Front = most recently used. Guarded.
  std::unordered_map<std::size_t, Entry> rows_;  // Guarded by mutex_.
  std::size_t builds_ = 0;                       // Guarded by mutex_.
  std::size_t evictions_ = 0;                    // Guarded by mutex_.
};

/// Builds the sorted column order of row `u` directly (the cache-free
/// reference used by TopKIndex itself and by tests).
TopKRowOrder BuildTopKRowOrder(const Matrix& s, std::size_t u);

/// Backend-dispatched variant: a dense session reuses the dense builder
/// bit-identically; a factored one argsorts a scratch row of factor dot
/// products; a sharded one runs a three-way ordered merge of the
/// own-shard block row, the boundary-CSR row and the implicit zero tail
/// (uncovered columns), each pre-sorted under the same (descending
/// score, ascending column) order — no n-sized scratch scoring pass.
TopKRowOrder BuildTopKRowOrder(const ScoringSession& session, std::size_t u);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_TOPK_INDEX_H_
