#include "serve/load_generator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

using Clock = std::chrono::steady_clock;

// Per-caller counters merged after the run (no contention while hot).
struct Tally {
  std::size_t score_requests = 0;
  std::size_t topk_requests = 0;
  std::size_t errors = 0;
  std::vector<double> latencies_ms;
};

// Issues the request_index-th request of one deterministic stream and
// returns whether it succeeded (latency is timed by the caller).
bool IssueRequest(ScoringService& service, std::size_t num_users,
                  const LoadGeneratorOptions& options, Rng& rng,
                  std::size_t request_index, Tally& tally) {
  if (options.topk_every > 0 &&
      request_index % options.topk_every == options.topk_every - 1) {
    ++tally.topk_requests;
    const std::size_t u = static_cast<std::size_t>(
        rng.NextBounded(num_users));
    return service.TopK(u, options.top_k, true).ok();
  }
  ++tally.score_requests;
  std::vector<UserPair> pairs(std::max<std::size_t>(
      options.pairs_per_request, 1));
  for (UserPair& pair : pairs) {
    pair.u = static_cast<std::size_t>(rng.NextBounded(num_users));
    pair.v = static_cast<std::size_t>(rng.NextBounded(num_users));
  }
  return service.ScorePairs(pairs).ok();
}

double PercentileMs(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_ms.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  index = index == 0 ? 0 : index - 1;
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

void AppendJsonNumber(std::string& out, const char* key, double value,
                      bool* first) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += buffer;
}

void AppendJsonSize(std::string& out, const char* key, std::uint64_t value,
                    bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string LoadGeneratorReport::ToJson() const {
  std::string out = "{";
  bool first = true;
  out += "\"mode\":\"" + mode + "\"";
  first = false;
  AppendJsonSize(out, "concurrency", concurrency, &first);
  out += ",\"batching\":";
  out += batching ? "true" : "false";
  AppendJsonSize(out, "requests", requests, &first);
  AppendJsonSize(out, "score_requests", score_requests, &first);
  AppendJsonSize(out, "topk_requests", topk_requests, &first);
  AppendJsonSize(out, "errors", errors, &first);
  AppendJsonSize(out, "swaps", swaps, &first);
  AppendJsonSize(out, "final_version", final_version, &first);
  AppendJsonNumber(out, "duration_seconds", duration_seconds, &first);
  AppendJsonNumber(out, "throughput_rps", throughput_rps, &first);
  out += ",\"latency_ms\":{";
  first = true;
  AppendJsonNumber(out, "p50", latency.p50_ms, &first);
  AppendJsonNumber(out, "p95", latency.p95_ms, &first);
  AppendJsonNumber(out, "p99", latency.p99_ms, &first);
  AppendJsonNumber(out, "max", latency.max_ms, &first);
  out += "}}";
  return out;
}

std::string LoadGeneratorReport::ToString() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve-load: %s loop, %zu caller(s), batching %s\n"
      "  %zu requests (%zu score, %zu topk), %zu error(s), %llu swap(s), "
      "final version %llu\n"
      "  %.0f req/sec over %.2f s; latency ms p50 %.3f  p95 %.3f  "
      "p99 %.3f  max %.3f",
      mode.c_str(), concurrency, batching ? "on" : "off", requests,
      score_requests, topk_requests, errors,
      static_cast<unsigned long long>(swaps),
      static_cast<unsigned long long>(final_version), throughput_rps,
      duration_seconds, latency.p50_ms, latency.p95_ms, latency.p99_ms,
      latency.max_ms);
  return buffer;
}

Result<LoadGeneratorReport> RunLoadGenerator(
    ModelRegistry& registry, ScoringService& service,
    const LoadGeneratorOptions& options) {
  const std::shared_ptr<const ServableModel> initial = registry.Acquire();
  if (initial == nullptr) {
    return Status::FailedPrecondition(
        "load generator needs a published model; Swap one in first");
  }
  const std::size_t num_users = initial->num_users();
  if (options.duration_seconds <= 0.0) {
    return Status::InvalidArgument("duration must be > 0 seconds");
  }
  const std::size_t concurrency = std::max<std::size_t>(
      options.concurrency, 1);

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  // Optional hot-swapper: republishes the initial artifact as a fresh
  // (re-validated, re-checksummed) version on a fixed cadence.
  std::atomic<bool> stop_swapper{false};
  std::uint64_t swaps = 0;
  std::thread swapper;
  if (options.swap_every_seconds > 0.0) {
    const ModelArtifact artifact = initial->session.artifact();
    swapper = std::thread([&registry, &stop_swapper, &swaps, artifact,
                           interval = options.swap_every_seconds] {
      auto next = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(interval));
      while (!stop_swapper.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (Clock::now() < next) continue;
        if (registry.Swap(ModelArtifact(artifact)).ok()) ++swaps;
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interval));
      }
    });
  }

  std::vector<Tally> tallies;
  if (options.mode == LoadGeneratorOptions::Mode::kClosed) {
    // Closed loop: each caller thread issues back-to-back requests.
    tallies.assign(concurrency, Tally{});
    std::vector<std::thread> callers;
    callers.reserve(concurrency);
    for (std::size_t t = 0; t < concurrency; ++t) {
      callers.emplace_back([&, t] {
        Tally& tally = tallies[t];
        Rng rng(options.seed + 0x9e3779b9u * (t + 1));
        for (std::size_t i = 0; Clock::now() < deadline; ++i) {
          const auto issued = Clock::now();
          const bool ok = IssueRequest(service, num_users, options, rng, i,
                                       tally);
          if (!ok) ++tally.errors;
          tally.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        issued)
                  .count());
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
  } else {
    // Open loop: arrivals on a fixed schedule, each request a pool
    // task; latency is scheduled-arrival → completion.
    const double rate = std::max(options.open_rate_rps, 1.0);
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    tallies.assign(1, Tally{});
    std::mutex tally_mutex;
    CompletionCounter inflight;
    ThreadPool& pool = ThreadPool::Global();
    for (std::size_t i = 0;; ++i) {
      const auto arrival = start + interval * i;
      if (arrival >= deadline) break;
      std::this_thread::sleep_until(arrival);
      inflight.Add();
      pool.Submit([&, i, arrival] {
        Tally local;
        Rng rng(options.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
        const bool ok = IssueRequest(service, num_users, options, rng, i,
                                     local);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - arrival)
                .count();
        {
          std::lock_guard<std::mutex> lock(tally_mutex);
          Tally& tally = tallies[0];
          tally.score_requests += local.score_requests;
          tally.topk_requests += local.topk_requests;
          if (!ok) ++tally.errors;
          tally.latencies_ms.push_back(latency_ms);
        }
        inflight.Done();
      });
    }
    inflight.Wait();
  }

  if (swapper.joinable()) {
    stop_swapper.store(true, std::memory_order_relaxed);
    swapper.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadGeneratorReport report;
  report.mode = options.mode == LoadGeneratorOptions::Mode::kClosed
                    ? "closed"
                    : "open";
  report.concurrency = concurrency;
  report.batching = service.batcher().options().enabled;
  report.swaps = swaps;
  report.final_version = registry.current_version();
  report.duration_seconds = elapsed;

  std::vector<double> latencies;
  for (const Tally& tally : tallies) {
    report.score_requests += tally.score_requests;
    report.topk_requests += tally.topk_requests;
    report.errors += tally.errors;
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  report.requests = report.score_requests + report.topk_requests;
  report.throughput_rps =
      elapsed > 0.0 ? static_cast<double>(report.requests) / elapsed : 0.0;
  std::sort(latencies.begin(), latencies.end());
  report.latency.p50_ms = PercentileMs(latencies, 0.50);
  report.latency.p95_ms = PercentileMs(latencies, 0.95);
  report.latency.p99_ms = PercentileMs(latencies, 0.99);
  report.latency.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return report;
}

}  // namespace slampred
