#include "serve/load_generator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/fault_injection.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

using Clock = std::chrono::steady_clock;

// Per-caller counters merged after the run (no contention while hot).
struct Tally {
  std::size_t score_requests = 0;
  std::size_t topk_requests = 0;
  std::size_t errors = 0;
  LoadErrorBreakdown breakdown;
  ServeTierCounts tiers;
  std::size_t invariant_violations = 0;
  std::vector<double> latencies_ms;

  void MergeCountsFrom(const Tally& other) {
    score_requests += other.score_requests;
    topk_requests += other.topk_requests;
    errors += other.errors;
    breakdown.deadline_exceeded += other.breakdown.deadline_exceeded;
    breakdown.shed += other.breakdown.shed;
    breakdown.io += other.breakdown.io;
    breakdown.numerical += other.breakdown.numerical;
    breakdown.unavailable += other.breakdown.unavailable;
    breakdown.other += other.breakdown.other;
    tiers.full += other.tiers.full;
    tiers.cached += other.tiers.cached;
    tiers.degraded += other.tiers.degraded;
    invariant_violations += other.invariant_violations;
  }
};

void ClassifyError(const Status& status, Tally& tally) {
  ++tally.errors;
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
      ++tally.breakdown.deadline_exceeded;
      break;
    case StatusCode::kResourceExhausted:
      ++tally.breakdown.shed;
      break;
    case StatusCode::kIoError:
      ++tally.breakdown.io;
      break;
    case StatusCode::kNumericalError:
      ++tally.breakdown.numerical;
      break;
    case StatusCode::kUnavailable:
      ++tally.breakdown.unavailable;
      break;
    default:
      ++tally.breakdown.other;
      break;
  }
}

void CountTier(ServeTier tier, Tally& tally) {
  switch (tier) {
    case ServeTier::kFull:
      ++tally.tiers.full;
      break;
    case ServeTier::kCached:
      ++tally.tiers.cached;
      break;
    case ServeTier::kDegraded:
      ++tally.tiers.degraded;
      break;
  }
}

// Issues the request_index-th request of one deterministic stream and
// records its outcome — error taxonomy, response tier, and (when
// verify_session is set) a full-tier bit-exactness check against the
// initially published model, whichever backend it serves from.
void IssueRequest(ScoringService& service, std::size_t num_users,
                  const LoadGeneratorOptions& options,
                  const ScoringSession* verify_session, Rng& rng,
                  std::size_t request_index, Tally& tally) {
  RequestOptions request;
  if (options.deadline_ms > 0.0) {
    request.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(
                               options.deadline_ms));
  }
  if (options.topk_every > 0 &&
      request_index % options.topk_every == options.topk_every - 1) {
    ++tally.topk_requests;
    const std::size_t u = static_cast<std::size_t>(
        rng.NextBounded(num_users));
    auto result = service.TopK(u, options.top_k, true, request);
    if (!result.ok()) {
      ClassifyError(result.status(), tally);
      return;
    }
    CountTier(result.value().tier, tally);
    if (verify_session != nullptr &&
        result.value().tier == ServeTier::kFull) {
      // Full-tier invariant: every entry's score is the served model's
      // value and the list is non-increasing.
      double prev = std::numeric_limits<double>::infinity();
      for (const TopKEntry& entry : result.value().entries) {
        if (entry.v >= num_users ||
            entry.score != verify_session->ScoreUnchecked(u, entry.v) ||
            entry.score > prev) {
          ++tally.invariant_violations;
          break;
        }
        prev = entry.score;
      }
    }
    return;
  }
  ++tally.score_requests;
  std::vector<UserPair> pairs(std::max<std::size_t>(
      options.pairs_per_request, 1));
  for (UserPair& pair : pairs) {
    pair.u = static_cast<std::size_t>(rng.NextBounded(num_users));
    pair.v = static_cast<std::size_t>(rng.NextBounded(num_users));
  }
  auto result = service.ScorePairs(pairs, request);
  if (!result.ok()) {
    ClassifyError(result.status(), tally);
    return;
  }
  CountTier(result.value().tier, tally);
  if (verify_session != nullptr && result.value().tier == ServeTier::kFull) {
    const std::vector<double>& scores = result.value().scores;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (i >= scores.size() ||
          scores[i] !=
              verify_session->ScoreUnchecked(pairs[i].u, pairs[i].v)) {
        ++tally.invariant_violations;
        break;
      }
    }
  }
}

// Arms the chaos fault schedule: a sustained-but-bounded stream of swap
// and artifact-read failures plus one consecutive serve.batch fault
// window sized to trip the dispatch breaker. All cadences are
// deterministic hit counts, so two chaos runs with the same workload
// shape inject the same fault sequence; every site runs dry before a
// typical run ends, letting the CI leg assert recovery (final_version
// advancing again after the faults stop).
void ArmChaosFaults() {
  FaultInjector& injector = FaultInjector::Instance();
  FaultSpec swap_spec;
  swap_spec.kind = FaultKind::kFailIo;
  swap_spec.every_n = 2;  // Every other swap fails...
  swap_spec.max_triggers = 6;  // ...for the first dozen swaps.
  injector.Arm("serve.swap", swap_spec);

  FaultSpec read_spec;
  read_spec.kind = FaultKind::kFailIo;
  read_spec.every_n = 3;  // Absorbed by the SwapFromFile retry budget.
  read_spec.max_triggers = 4;
  injector.Arm("artifact.read", read_spec);

  FaultSpec batch_spec;
  batch_spec.kind = FaultKind::kFailNumerical;
  batch_spec.trigger_after = 25;  // Let the run warm up first.
  batch_spec.max_triggers = 4;    // 3 consecutive trip the breaker; the
                                  // 4th fails the first half-open probe.
  injector.Arm("serve.batch", batch_spec);
}

void DisarmChaosFaults() {
  FaultInjector& injector = FaultInjector::Instance();
  injector.Disarm("serve.swap");
  injector.Disarm("artifact.read");
  injector.Disarm("serve.batch");
}

double PercentileMs(const std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted_ms.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  index = index == 0 ? 0 : index - 1;
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

void AppendJsonNumber(std::string& out, const char* key, double value,
                      bool* first) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += buffer;
}

void AppendJsonSize(std::string& out, const char* key, std::uint64_t value,
                    bool* first) {
  if (!*first) out += ",";
  *first = false;
  out += "\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string LoadGeneratorReport::ToJson() const {
  std::string out = "{";
  bool first = true;
  out += "\"mode\":\"" + mode + "\"";
  first = false;
  AppendJsonSize(out, "concurrency", concurrency, &first);
  out += ",\"batching\":";
  out += batching ? "true" : "false";
  AppendJsonSize(out, "requests", requests, &first);
  AppendJsonSize(out, "score_requests", score_requests, &first);
  AppendJsonSize(out, "topk_requests", topk_requests, &first);
  AppendJsonSize(out, "errors", errors, &first);
  out += ",\"error_breakdown\":{";
  first = true;
  AppendJsonSize(out, "deadline_exceeded", error_breakdown.deadline_exceeded,
                 &first);
  AppendJsonSize(out, "shed", error_breakdown.shed, &first);
  AppendJsonSize(out, "io", error_breakdown.io, &first);
  AppendJsonSize(out, "numerical", error_breakdown.numerical, &first);
  AppendJsonSize(out, "unavailable", error_breakdown.unavailable, &first);
  AppendJsonSize(out, "other", error_breakdown.other, &first);
  out += "}";
  out += ",\"tiers\":{";
  first = true;
  AppendJsonSize(out, "full", tiers.full, &first);
  AppendJsonSize(out, "cached", tiers.cached, &first);
  AppendJsonSize(out, "degraded", tiers.degraded, &first);
  out += "}";
  first = false;
  AppendJsonSize(out, "invariant_violations", invariant_violations, &first);
  AppendJsonSize(out, "swaps", swaps, &first);
  AppendJsonSize(out, "final_version", final_version, &first);
  AppendJsonSize(out, "artifact_bytes", artifact_bytes, &first);
  AppendJsonSize(out, "float_equiv_bytes", float_equiv_bytes, &first);
  AppendJsonSize(out, "hot_rows", hot_rows, &first);
  AppendJsonSize(out, "hot_hits", hot_hits, &first);
  AppendJsonNumber(out, "cache_hit_rate", cache_hit_rate, &first);
  AppendJsonNumber(out, "auc", auc, &first);
  out += ",\"recovery\":{";
  first = true;
  AppendJsonSize(out, "swap_failures",
                 static_cast<std::uint64_t>(recovery.swap_failures), &first);
  AppendJsonSize(out, "batch_failures",
                 static_cast<std::uint64_t>(recovery.batch_failures), &first);
  AppendJsonSize(out, "shed", static_cast<std::uint64_t>(recovery.shed),
                 &first);
  AppendJsonSize(out, "deadline_exceeded",
                 static_cast<std::uint64_t>(recovery.deadline_exceeded),
                 &first);
  AppendJsonSize(out, "breaker_trips",
                 static_cast<std::uint64_t>(recovery.breaker_trips), &first);
  AppendJsonSize(out, "degraded_responses",
                 static_cast<std::uint64_t>(recovery.degraded_responses),
                 &first);
  AppendJsonSize(out, "artifact_rollbacks",
                 static_cast<std::uint64_t>(recovery.artifact_rollbacks),
                 &first);
  out += "}";
  first = false;
  AppendJsonNumber(out, "duration_seconds", duration_seconds, &first);
  AppendJsonNumber(out, "throughput_rps", throughput_rps, &first);
  out += ",\"latency_ms\":{";
  first = true;
  AppendJsonNumber(out, "p50", latency.p50_ms, &first);
  AppendJsonNumber(out, "p95", latency.p95_ms, &first);
  AppendJsonNumber(out, "p99", latency.p99_ms, &first);
  AppendJsonNumber(out, "max", latency.max_ms, &first);
  out += "}}";
  return out;
}

std::string LoadGeneratorReport::ToString() const {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "serve-load: %s loop, %zu caller(s), batching %s\n"
      "  %zu requests (%zu score, %zu topk), %zu error(s), %llu swap(s), "
      "final version %llu\n"
      "  %.0f req/sec over %.2f s; latency ms p50 %.3f  p95 %.3f  "
      "p99 %.3f  max %.3f",
      mode.c_str(), concurrency, batching ? "on" : "off", requests,
      score_requests, topk_requests, errors,
      static_cast<unsigned long long>(swaps),
      static_cast<unsigned long long>(final_version), throughput_rps,
      duration_seconds, latency.p50_ms, latency.p95_ms, latency.p99_ms,
      latency.max_ms);
  std::string out = buffer;
  if (errors > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "\n  errors: deadline %zu  shed %zu  io %zu  "
                  "numerical %zu  unavailable %zu  other %zu",
                  error_breakdown.deadline_exceeded, error_breakdown.shed,
                  error_breakdown.io, error_breakdown.numerical,
                  error_breakdown.unavailable, error_breakdown.other);
    out += buffer;
  }
  if (tiers.cached > 0 || tiers.degraded > 0 || invariant_violations > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "\n  tiers: full %zu  cached %zu  degraded %zu; "
                  "invariant violations %zu",
                  tiers.full, tiers.cached, tiers.degraded,
                  invariant_violations);
    out += buffer;
  }
  if (hot_rows > 0 || auc >= 0.0 || artifact_bytes > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  "\n  artifact %llu bytes (float equiv %llu); hot rows "
                  "%zu, hot hits %llu, cache hit rate %.3f",
                  static_cast<unsigned long long>(artifact_bytes),
                  static_cast<unsigned long long>(float_equiv_bytes),
                  hot_rows, static_cast<unsigned long long>(hot_hits),
                  cache_hit_rate);
    out += buffer;
    if (auc >= 0.0) {
      std::snprintf(buffer, sizeof(buffer), "; sampled AUC %.4f", auc);
      out += buffer;
    }
  }
  if (recovery.Total() > 0) {
    out += "\n  " + recovery.ToString();
  }
  return out;
}

Result<LoadGeneratorReport> RunLoadGenerator(
    ModelRegistry& registry, ScoringService& service,
    const LoadGeneratorOptions& options) {
  const std::shared_ptr<const ServableModel> initial = registry.Acquire();
  if (initial == nullptr) {
    return Status::FailedPrecondition(
        "load generator needs a published model; Swap one in first");
  }
  const std::size_t num_users = initial->num_users();
  if (options.duration_seconds <= 0.0) {
    return Status::InvalidArgument("duration must be > 0 seconds");
  }
  const std::size_t concurrency = std::max<std::size_t>(
      options.concurrency, 1);

  // Full-tier verification reference: the swapper only ever republishes
  // the initially published artifact (in memory or from swap_path), so
  // every version serves the same scores and a full-tier response must
  // bit-match the initial session regardless of which version answered.
  const bool verify = options.verify || options.chaos;
  const ScoringSession* verify_session = verify ? &initial->session : nullptr;

  if (options.chaos) ArmChaosFaults();

  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_seconds));

  // Optional hot-swapper: republishes the initial artifact as a fresh
  // (re-validated, re-checksummed) version on a fixed cadence.
  std::atomic<bool> stop_swapper{false};
  std::uint64_t swaps = 0;
  std::thread swapper;
  if (options.swap_every_seconds > 0.0) {
    const ModelArtifact artifact = initial->session.artifact();
    swapper = std::thread([&registry, &stop_swapper, &swaps, artifact,
                           path = options.swap_path,
                           interval = options.swap_every_seconds] {
      auto next = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(interval));
      while (!stop_swapper.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (Clock::now() < next) continue;
        const Status swapped = path.empty()
                                   ? registry.Swap(ModelArtifact(artifact))
                                   : registry.SwapFromFile(path);
        if (swapped.ok()) ++swaps;
        next += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interval));
      }
    });
  }

  std::vector<Tally> tallies;
  if (options.mode == LoadGeneratorOptions::Mode::kClosed) {
    // Closed loop: each caller thread issues back-to-back requests.
    tallies.assign(concurrency, Tally{});
    std::vector<std::thread> callers;
    callers.reserve(concurrency);
    for (std::size_t t = 0; t < concurrency; ++t) {
      callers.emplace_back([&, t] {
        Tally& tally = tallies[t];
        Rng rng(options.seed + 0x9e3779b9u * (t + 1));
        for (std::size_t i = 0; Clock::now() < deadline; ++i) {
          const auto issued = Clock::now();
          IssueRequest(service, num_users, options, verify_session, rng, i,
                       tally);
          tally.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        issued)
                  .count());
        }
      });
    }
    for (std::thread& caller : callers) caller.join();
  } else {
    // Open loop: arrivals on a fixed schedule, each request a pool
    // task; latency is scheduled-arrival → completion.
    const double rate = std::max(options.open_rate_rps, 1.0);
    const auto interval = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(1.0 / rate));
    tallies.assign(1, Tally{});
    std::mutex tally_mutex;
    CompletionCounter inflight;
    ThreadPool& pool = ThreadPool::Global();
    for (std::size_t i = 0;; ++i) {
      const auto arrival = start + interval * i;
      if (arrival >= deadline) break;
      std::this_thread::sleep_until(arrival);
      inflight.Add();
      pool.Submit([&, i, arrival] {
        Tally local;
        Rng rng(options.seed + 0x9e3779b97f4a7c15ULL * (i + 1));
        IssueRequest(service, num_users, options, verify_session, rng, i,
                     local);
        const double latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - arrival)
                .count();
        {
          std::lock_guard<std::mutex> lock(tally_mutex);
          Tally& tally = tallies[0];
          tally.MergeCountsFrom(local);
          tally.latencies_ms.push_back(latency_ms);
        }
        inflight.Done();
      });
    }
    inflight.Wait();
  }

  if (swapper.joinable()) {
    stop_swapper.store(true, std::memory_order_relaxed);
    swapper.join();
  }
  if (options.chaos) DisarmChaosFaults();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  LoadGeneratorReport report;
  report.mode = options.mode == LoadGeneratorOptions::Mode::kClosed
                    ? "closed"
                    : "open";
  report.concurrency = concurrency;
  report.batching = service.batcher().options().enabled;
  report.swaps = swaps;
  report.final_version = registry.current_version();
  report.duration_seconds = elapsed;

  std::vector<double> latencies;
  Tally merged;
  for (const Tally& tally : tallies) {
    merged.MergeCountsFrom(tally);
    latencies.insert(latencies.end(), tally.latencies_ms.begin(),
                     tally.latencies_ms.end());
  }
  report.score_requests = merged.score_requests;
  report.topk_requests = merged.topk_requests;
  report.errors = merged.errors;
  report.error_breakdown = merged.breakdown;
  report.tiers = merged.tiers;
  report.invariant_violations = merged.invariant_violations;
  report.recovery = registry.recovery();
  if (const auto final_model = registry.Acquire()) {
    report.hot_rows = final_model->hot_rows.size();
    report.hot_hits =
        final_model->hot_hits.load(std::memory_order_relaxed);
  }
  report.cache_hit_rate =
      merged.topk_requests > 0
          ? static_cast<double>(merged.tiers.cached) /
                static_cast<double>(merged.topk_requests)
          : 0.0;
  report.requests = report.score_requests + report.topk_requests;
  report.throughput_rps =
      elapsed > 0.0 ? static_cast<double>(report.requests) / elapsed : 0.0;
  std::sort(latencies.begin(), latencies.end());
  report.latency.p50_ms = PercentileMs(latencies, 0.50);
  report.latency.p95_ms = PercentileMs(latencies, 0.95);
  report.latency.p99_ms = PercentileMs(latencies, 0.99);
  report.latency.max_ms = latencies.empty() ? 0.0 : latencies.back();
  return report;
}

}  // namespace slampred
