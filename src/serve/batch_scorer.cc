#include "serve/batch_scorer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Translates the "serve.batch" fault site into a dispatch failure.
Status InjectedBatchFault() {
  switch (SLAMPRED_FAULT_HIT("serve.batch")) {
    case FaultKind::kFailIo:
      return Status::IoError("injected batch dispatch fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError("injected batch dispatch fault");
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected batch dispatch fault");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

BatchScorer::BatchScorer(ModelRegistry* registry, BatchScorerOptions options)
    : registry_(registry), options_(options), breaker_(options.breaker) {}

std::size_t BatchScorer::Cost(const Request& request) {
  return request.pairs != nullptr ? std::max<std::size_t>(
                                        request.pairs->size(), 1)
                                  : 1;
}

Result<ScoreBatchResponse> BatchScorer::ScorePairs(
    const std::vector<UserPair>& pairs, const RequestOptions& options) {
  Request request;
  request.pairs = &pairs;
  request.deadline = options.deadline;
  RunQueued(request);
  if (!request.status.ok()) return request.status;
  return ScoreBatchResponse{std::move(request.scores), request.version,
                            request.tier};
}

Result<TopKResponse> BatchScorer::TopK(std::size_t u, std::size_t k,
                                       bool exclude_known_links,
                                       const RequestOptions& options) {
  Request request;
  request.u = u;
  request.k = k;
  request.exclude_known_links = exclude_known_links;
  request.deadline = options.deadline;
  RunQueued(request);
  if (!request.status.ok()) return request.status;
  return TopKResponse{std::move(request.entries), request.version,
                      request.tier};
}

void BatchScorer::RunQueued(Request& request) {
  const bool has_deadline =
      request.deadline != std::chrono::steady_clock::time_point::max();

  if (!options_.enabled) {
    // Batch of one through the identical dispatch path (same snapshot
    // discipline, same fault site), skipping the queue.
    if (has_deadline && std::chrono::steady_clock::now() >= request.deadline) {
      request.status = Status::DeadlineExceeded(
          "deadline passed before the request could be dispatched");
      registry_->NoteDeadlineExceeded();
      return;
    }
    ProcessBatch({&request});
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);

  if (has_deadline && std::chrono::steady_clock::now() >= request.deadline) {
    request.status = Status::DeadlineExceeded(
        "deadline passed before the request could be queued");
    registry_->NoteDeadlineExceeded();
    return;
  }

  // Admission control: a full queue sheds one request per ShedPolicy.
  if (options_.queue_cap > 0 && queue_.size() >= options_.queue_cap) {
    if (options_.shed_policy == ShedPolicy::kRejectNewest) {
      request.status = Status::ResourceExhausted(
          "admission queue at cap " + std::to_string(options_.queue_cap) +
          "; request shed (reject-newest)");
      registry_->NoteShed();
      return;
    }
    // Reject-oldest: evict the front of the queue to make room.
    Request* victim = queue_.front();
    queue_.pop_front();
    queued_pairs_ -= Cost(*victim);
    victim->status = Status::ResourceExhausted(
        "shed from a full admission queue (reject-oldest, cap " +
        std::to_string(options_.queue_cap) + ")");
    victim->done = true;
    registry_->NoteShed();
    cv_.notify_all();  // Wake the evicted owner promptly.
  }

  queue_.push_back(&request);
  queued_pairs_ += Cost(request);
  const auto coalesce_deadline =
      std::chrono::steady_clock::now() + options_.max_wait;
  while (!request.done) {
    if (has_deadline && std::chrono::steady_clock::now() >= request.deadline) {
      // Shed only while still queued: once a leader has claimed this
      // request the stack storage must stay live until the batch marks
      // it done (and that batch will answer it).
      auto it = std::find(queue_.begin(), queue_.end(), &request);
      if (it != queue_.end()) {
        queue_.erase(it);
        queued_pairs_ -= Cost(request);
        request.status = Status::DeadlineExceeded(
            "deadline passed while waiting in the admission queue");
        request.done = true;
        registry_->NoteDeadlineExceeded();
        return;
      }
    }
    if (!dispatching_ &&
        (queued_pairs_ >= options_.max_batch_pairs ||
         queue_.size() >= options_.max_batch_requests ||
         std::chrono::steady_clock::now() >= coalesce_deadline)) {
      DispatchLocked(lock);
      continue;
    }
    if (dispatching_) {
      // A dispatch (possibly carrying this request) is in flight; it
      // always ends with notify_all, so the wait cannot hang. A timed
      // wait lets a still-queued request wake at its own deadline.
      if (has_deadline) {
        cv_.wait_until(lock, request.deadline);
      } else {
        cv_.wait(lock);
      }
    } else {
      cv_.wait_until(lock, has_deadline
                               ? std::min(coalesce_deadline, request.deadline)
                               : coalesce_deadline);
    }
  }
}

void BatchScorer::DispatchLocked(std::unique_lock<std::mutex>& lock) {
  dispatching_ = true;
  const auto now = std::chrono::steady_clock::now();
  std::vector<Request*> batch;
  std::size_t batch_pairs = 0;
  bool dropped_expired = false;
  while (!queue_.empty() && batch.size() < options_.max_batch_requests) {
    Request* next = queue_.front();
    const std::size_t cost = Cost(*next);
    if (next->deadline <= now) {
      // Expired while queued: shed before dispatch, never scored.
      queue_.pop_front();
      queued_pairs_ -= cost;
      next->status = Status::DeadlineExceeded(
          "deadline passed while waiting in the admission queue");
      next->done = true;
      registry_->NoteDeadlineExceeded();
      dropped_expired = true;
      continue;
    }
    if (!batch.empty() && batch_pairs + cost > options_.max_batch_pairs) {
      break;
    }
    queue_.pop_front();
    queued_pairs_ -= cost;
    batch.push_back(next);
    batch_pairs += cost;
  }
  if (dropped_expired) cv_.notify_all();  // Wake expired owners promptly.
  if (batch.empty()) {
    dispatching_ = false;
    return;
  }
  ++batches_;
  if (batch.size() > 1) coalesced_ += batch.size();

  lock.unlock();
  ProcessBatch(batch);
  lock.lock();
  dispatching_ = false;
  for (Request* request : batch) request->done = true;
  cv_.notify_all();
}

void BatchScorer::ProcessBatch(const std::vector<Request*>& batch) {
  if (!breaker_.AllowRequest()) {
    // Breaker open: the full dispatch path is quarantined. Answer from
    // the cheap tier against the last-good model instead of failing.
    ProcessBatchCheap(batch);
    return;
  }
  const Status injected = InjectedBatchFault();
  if (!injected.ok()) {
    registry_->NoteBatchFailure();
    if (breaker_.RecordFailure()) registry_->NoteBreakerTrip();
    for (Request* request : batch) request->status = injected;
    return;
  }
  const std::shared_ptr<const ServableModel> model = registry_->Acquire();
  if (model == nullptr) {
    // Not a path failure — there is simply nothing published yet; the
    // breaker state is left untouched.
    for (Request* request : batch) {
      request->status = Status::FailedPrecondition(
          "no model published; Swap one into the registry first");
    }
    return;
  }
  const ScoringSession& session = model->session;
  const std::size_t n = session.num_users();

  // Validate and flatten the pair requests into one contiguous batch.
  std::vector<Request*> topk_requests;
  std::vector<std::pair<Request*, std::size_t>> flat_slices;
  std::vector<UserPair> flat;
  for (Request* request : batch) {
    request->version = model->version;
    if (request->pairs == nullptr) {
      topk_requests.push_back(request);
      continue;
    }
    const std::vector<UserPair>& pairs = *request->pairs;
    bool valid = true;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i].u >= n || pairs[i].v >= n) {
        request->status = Status::OutOfRange(
            "pair " + std::to_string(i) + " = (" +
            std::to_string(pairs[i].u) + ", " + std::to_string(pairs[i].v) +
            ") outside the served score matrix (" + std::to_string(n) +
            " users)");
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    flat_slices.emplace_back(request, flat.size());
    flat.insert(flat.end(), pairs.begin(), pairs.end());
  }

  // One deterministic fan-out over every coalesced pair: each output
  // element has exactly one writing chunk, so the scores are
  // bit-identical to the serial oracle at any thread count.
  std::vector<double> flat_scores(flat.size());
  ParallelFor(0, flat.size(), GrainForWork(8),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  flat_scores[i] = session.ScoreUnchecked(flat[i].u, flat[i].v);
                }
              });
  for (const auto& [request, offset] : flat_slices) {
    request->scores.assign(
        flat_scores.begin() + static_cast<std::ptrdiff_t>(offset),
        flat_scores.begin() +
            static_cast<std::ptrdiff_t>(offset + request->pairs->size()));
  }

  // Top-K requests fan out one request per index (row sorts dominate).
  // A request too close to its deadline for a full row sort is answered
  // from the cheap tier instead (only when degrade_topk_under is set).
  const auto topk_now = std::chrono::steady_clock::now();
  ParallelFor(0, topk_requests.size(), 1,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  Request* request = topk_requests[i];
                  if (options_.degrade_topk_under.count() > 0 &&
                      request->deadline !=
                          std::chrono::steady_clock::time_point::max() &&
                      request->deadline - topk_now <
                          options_.degrade_topk_under) {
                    AnswerCheap(*model, request);
                    continue;
                  }
                  ServeTier tier = ServeTier::kFull;
                  auto result = TopKOnModel(*model, request->u, request->k,
                                            request->exclude_known_links,
                                            &tier);
                  if (result.ok()) {
                    request->entries = std::move(result).value();
                    request->tier = tier;
                  } else {
                    request->status = result.status();
                  }
                }
              });

  // The full path ran to completion: per-request argument errors (e.g.
  // out-of-range pairs) are caller mistakes, not path failures.
  breaker_.RecordSuccess();
}

void BatchScorer::ProcessBatchCheap(const std::vector<Request*>& batch) {
  const std::shared_ptr<const ServableModel> model = registry_->Acquire();
  if (model == nullptr) {
    for (Request* request : batch) {
      request->status = Status::FailedPrecondition(
          "no model published; Swap one into the registry first");
    }
    return;
  }
  for (Request* request : batch) {
    request->version = model->version;
    AnswerCheap(*model, request);
  }
}

void BatchScorer::AnswerCheap(const ServableModel& model, Request* request) {
  if (request->pairs != nullptr) {
    auto result = DegradedScorePairsOnModel(model, *request->pairs);
    if (!result.ok()) {
      request->status = result.status();
      return;
    }
    request->scores = std::move(result).value();
    request->tier = ServeTier::kDegraded;
  } else if (CachedTopKOnModel(model, request->u, request->k,
                               request->exclude_known_links,
                               &request->entries)) {
    request->tier = ServeTier::kCached;
  } else {
    auto result = DegradedTopKOnModel(model, request->u, request->k,
                                      request->exclude_known_links);
    if (!result.ok()) {
      request->status = result.status();
      return;
    }
    request->entries = std::move(result).value();
    request->tier = ServeTier::kDegraded;
  }
  registry_->NoteDegradedResponse();
}

std::size_t BatchScorer::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::size_t BatchScorer::coalesced_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

std::size_t BatchScorer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace slampred
