#include "serve/batch_scorer.h"

#include <algorithm>
#include <string>
#include <utility>

#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Translates the "serve.batch" fault site into a dispatch failure.
Status InjectedBatchFault() {
  switch (SLAMPRED_FAULT_HIT("serve.batch")) {
    case FaultKind::kFailIo:
      return Status::IoError("injected batch dispatch fault");
    case FaultKind::kFailNumerical:
    case FaultKind::kPoisonNaN:
    case FaultKind::kPoisonInf:
      return Status::NumericalError("injected batch dispatch fault");
    case FaultKind::kFailNotConverged:
      return Status::NotConverged("injected batch dispatch fault");
    case FaultKind::kNone:
      break;
  }
  return Status::OK();
}

}  // namespace

BatchScorer::BatchScorer(ModelRegistry* registry, BatchScorerOptions options)
    : registry_(registry), options_(options) {}

std::size_t BatchScorer::Cost(const Request& request) {
  return request.pairs != nullptr ? std::max<std::size_t>(
                                        request.pairs->size(), 1)
                                  : 1;
}

Result<ScoreBatchResponse> BatchScorer::ScorePairs(
    const std::vector<UserPair>& pairs) {
  Request request;
  request.pairs = &pairs;
  RunQueued(request);
  if (!request.status.ok()) return request.status;
  return ScoreBatchResponse{std::move(request.scores), request.version};
}

Result<TopKResponse> BatchScorer::TopK(std::size_t u, std::size_t k,
                                       bool exclude_known_links) {
  Request request;
  request.u = u;
  request.k = k;
  request.exclude_known_links = exclude_known_links;
  RunQueued(request);
  if (!request.status.ok()) return request.status;
  return TopKResponse{std::move(request.entries), request.version};
}

void BatchScorer::RunQueued(Request& request) {
  if (!options_.enabled) {
    // Batch of one through the identical dispatch path (same snapshot
    // discipline, same fault site), skipping the queue.
    ProcessBatch({&request});
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_;
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(&request);
  queued_pairs_ += Cost(request);
  const auto deadline = std::chrono::steady_clock::now() + options_.max_wait;
  while (!request.done) {
    if (!dispatching_ &&
        (queued_pairs_ >= options_.max_batch_pairs ||
         queue_.size() >= options_.max_batch_requests ||
         std::chrono::steady_clock::now() >= deadline)) {
      DispatchLocked(lock);
      continue;
    }
    if (dispatching_) {
      // A dispatch (possibly carrying this request) is in flight; it
      // always ends with notify_all, so an untimed wait cannot hang.
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock, deadline);
    }
  }
}

void BatchScorer::DispatchLocked(std::unique_lock<std::mutex>& lock) {
  dispatching_ = true;
  std::vector<Request*> batch;
  std::size_t batch_pairs = 0;
  while (!queue_.empty() && batch.size() < options_.max_batch_requests) {
    Request* next = queue_.front();
    const std::size_t cost = Cost(*next);
    if (!batch.empty() && batch_pairs + cost > options_.max_batch_pairs) {
      break;
    }
    queue_.pop_front();
    queued_pairs_ -= cost;
    batch.push_back(next);
    batch_pairs += cost;
  }
  ++batches_;
  if (batch.size() > 1) coalesced_ += batch.size();

  lock.unlock();
  ProcessBatch(batch);
  lock.lock();
  dispatching_ = false;
  for (Request* request : batch) request->done = true;
  cv_.notify_all();
}

void BatchScorer::ProcessBatch(const std::vector<Request*>& batch) {
  const Status injected = InjectedBatchFault();
  if (!injected.ok()) {
    registry_->NoteBatchFailure();
    for (Request* request : batch) request->status = injected;
    return;
  }
  const std::shared_ptr<const ServableModel> model = registry_->Acquire();
  if (model == nullptr) {
    for (Request* request : batch) {
      request->status = Status::FailedPrecondition(
          "no model published; Swap one into the registry first");
    }
    return;
  }
  const Matrix& s = model->session.artifact().s;
  const std::size_t n = s.rows();

  // Validate and flatten the pair requests into one contiguous batch.
  std::vector<Request*> topk_requests;
  std::vector<std::pair<Request*, std::size_t>> flat_slices;
  std::vector<UserPair> flat;
  for (Request* request : batch) {
    request->version = model->version;
    if (request->pairs == nullptr) {
      topk_requests.push_back(request);
      continue;
    }
    const std::vector<UserPair>& pairs = *request->pairs;
    bool valid = true;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      if (pairs[i].u >= n || pairs[i].v >= n) {
        request->status = Status::OutOfRange(
            "pair " + std::to_string(i) + " = (" +
            std::to_string(pairs[i].u) + ", " + std::to_string(pairs[i].v) +
            ") outside the served score matrix (" + std::to_string(n) +
            " users)");
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    flat_slices.emplace_back(request, flat.size());
    flat.insert(flat.end(), pairs.begin(), pairs.end());
  }

  // One deterministic fan-out over every coalesced pair: each output
  // element has exactly one writing chunk, so the scores are
  // bit-identical to the serial oracle at any thread count.
  std::vector<double> flat_scores(flat.size());
  ParallelFor(0, flat.size(), GrainForWork(8),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  flat_scores[i] = s(flat[i].u, flat[i].v);
                }
              });
  for (const auto& [request, offset] : flat_slices) {
    request->scores.assign(
        flat_scores.begin() + static_cast<std::ptrdiff_t>(offset),
        flat_scores.begin() +
            static_cast<std::ptrdiff_t>(offset + request->pairs->size()));
  }

  // Top-K requests fan out one request per index (row sorts dominate).
  ParallelFor(0, topk_requests.size(), 1,
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  Request* request = topk_requests[i];
                  auto result = TopKOnModel(*model, request->u, request->k,
                                            request->exclude_known_links);
                  if (result.ok()) {
                    request->entries = std::move(result).value();
                  } else {
                    request->status = result.status();
                  }
                }
              });
}

std::size_t BatchScorer::batches_dispatched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}

std::size_t BatchScorer::coalesced_requests() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return coalesced_;
}

}  // namespace slampred
