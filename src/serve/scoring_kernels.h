// Request-scoring kernels shared by the direct and batched serving
// paths. Both paths call the same functions against one Acquire()'d
// ServableModel snapshot, so batching on/off and any thread count
// produce bit-identical results: a pair score is a pure lookup into the
// snapshot's S written by exactly one ParallelFor chunk, and a top-K
// answer streams the snapshot's deterministic per-row sorted order.

#ifndef SLAMPRED_SERVE_SCORING_KERNELS_H_
#define SLAMPRED_SERVE_SCORING_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace slampred {

/// One retrieved neighbor candidate of a TopK query.
struct TopKEntry {
  std::size_t v;  ///< Candidate user.
  double score;   ///< Confidence score of (u, v).

  bool operator==(const TopKEntry& other) const {
    return v == other.v && score == other.score;
  }
};

/// Batch pair scores answered from one model version.
struct ScoreBatchResponse {
  std::vector<double> scores;
  std::uint64_t version = 0;  ///< Registry version that answered.
};

/// Top-K retrieval answered from one model version.
struct TopKResponse {
  std::vector<TopKEntry> entries;  ///< At most k, best first.
  std::uint64_t version = 0;       ///< Registry version that answered.
};

/// Scores every pair against `model`'s S, fanned out deterministically
/// over the shared thread pool. Bit-identical to the serial
/// ScoringSession::ScorePairs oracle; every pair is bounds-checked
/// (kOutOfRange names the first offending pair, like the oracle).
Result<std::vector<double>> ScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs);

/// The top `k` candidates v for user `u` by descending score (ties by
/// ascending v; v == u never returned), streamed from the model's
/// lazily-built sorted-row cache. With `exclude_known_links` set, every
/// v stored in row u of the model's known-links adjacency is skipped.
/// Returns fewer than k entries when fewer candidates exist; kOutOfRange
/// when u is outside the served matrix.
Result<std::vector<TopKEntry>> TopKOnModel(const ServableModel& model,
                                           std::size_t u, std::size_t k,
                                           bool exclude_known_links);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_SCORING_KERNELS_H_
