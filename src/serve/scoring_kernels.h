// Request-scoring kernels shared by the direct and batched serving
// paths. Both paths call the same functions against one Acquire()'d
// ServableModel snapshot, so batching on/off and any thread count
// produce bit-identical results: a pair score is a pure lookup into the
// snapshot's S written by exactly one ParallelFor chunk, and a top-K
// answer streams the snapshot's deterministic per-row sorted order.

#ifndef SLAMPRED_SERVE_SCORING_KERNELS_H_
#define SLAMPRED_SERVE_SCORING_KERNELS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/social_graph.h"
#include "serve/model_registry.h"
#include "util/status.h"

namespace slampred {

/// Which path produced a response. `kFull` is the bit-exact contract
/// path (snapshot S lookups / cached sorted-row order); `kCached`
/// answers a top-K from an already-resident sorted row when the full
/// path is unavailable; `kDegraded` answers from the known-links CSR
/// (common-neighbor scores) when even the cache cannot help. Only
/// `kFull` responses carry the determinism guarantee.
enum class ServeTier { kFull, kCached, kDegraded };

/// Stable name of a serve tier ("full" / "cached" / "degraded").
const char* ServeTierName(ServeTier tier);

/// Per-request serving options (deadline and future per-request knobs).
struct RequestOptions {
  /// Absolute point after which the request should be shed rather than
  /// answered; time_point::max() (the default) means no deadline.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }

  /// Options with a deadline `timeout` from now.
  static RequestOptions WithTimeout(std::chrono::nanoseconds timeout) {
    RequestOptions options;
    options.deadline = std::chrono::steady_clock::now() + timeout;
    return options;
  }
};

/// One retrieved neighbor candidate of a TopK query.
struct TopKEntry {
  std::size_t v;  ///< Candidate user.
  double score;   ///< Confidence score of (u, v).

  bool operator==(const TopKEntry& other) const {
    return v == other.v && score == other.score;
  }
};

/// Batch pair scores answered from one model version.
struct ScoreBatchResponse {
  std::vector<double> scores;
  std::uint64_t version = 0;  ///< Registry version that answered.
  ServeTier tier = ServeTier::kFull;  ///< Path that produced the scores.
};

/// Top-K retrieval answered from one model version.
struct TopKResponse {
  std::vector<TopKEntry> entries;  ///< At most k, best first.
  std::uint64_t version = 0;       ///< Registry version that answered.
  ServeTier tier = ServeTier::kFull;  ///< Path that produced the entries.
};

/// Scores every pair against `model`'s S, fanned out deterministically
/// over the shared thread pool. Bit-identical to the serial
/// ScoringSession::ScorePairs oracle; every pair is bounds-checked
/// (kOutOfRange names the first offending pair, like the oracle).
Result<std::vector<double>> ScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs);

/// The top `k` candidates v for user `u` by descending score (ties by
/// ascending v; v == u never returned), streamed from the model's
/// lazily-built sorted-row cache. With `exclude_known_links` set, every
/// v stored in row u of the model's known-links adjacency is skipped.
/// Returns fewer than k entries when fewer candidates exist; kOutOfRange
/// when u is outside the served matrix.
///
/// A hot user (model.hot_rows) whose precomputed prefix covers the
/// request is answered from the stored (v, score) pairs — the float
/// oracle snapshot, never the quantized payload — and `tier_out` (when
/// non-null) reports kCached; otherwise the full path runs and reports
/// kFull. Hot-row entry order matches the full path's bit-exactly, so
/// the tier changes cost, never results.
Result<std::vector<TopKEntry>> TopKOnModel(const ServableModel& model,
                                           std::size_t u, std::size_t k,
                                           bool exclude_known_links,
                                           ServeTier* tier_out = nullptr);

/// Cached-tier top-K: answers from a precomputed hot row whose prefix
/// covers the request, else from an already-resident sorted row of the
/// model's top-K cache (TopKIndex::Peek) — full-quality entries, but
/// only when they are free. Returns true and fills `entries` on a
/// cache hit; false (building nothing) on a miss or out-of-range `u`,
/// in which case the caller falls through to the degraded kernel.
bool CachedTopKOnModel(const ServableModel& model, std::size_t u,
                       std::size_t k, bool exclude_known_links,
                       std::vector<TopKEntry>* entries);

/// Degraded-tier pair scores: the common-neighbor count of (u, v) in the
/// model's known-links CSR instead of a lookup into S. Cheap (two sorted
/// row intersections per pair, no dense matrix touched), deterministic,
/// and well-ordered — but NOT comparable to full-tier scores. Bounds are
/// checked against the adjacency; an empty adjacency scores every pair 0.
Result<std::vector<double>> DegradedScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs);

/// Degraded-tier top-K: candidates ranked by common-neighbor count with
/// `u` (descending count, ties by ascending v; v == u and zero-count
/// candidates never returned). With `exclude_known_links`, direct
/// neighbors of u are skipped. Touches only rows of the CSR reachable
/// within two hops of u.
Result<std::vector<TopKEntry>> DegradedTopKOnModel(const ServableModel& model,
                                                   std::size_t u,
                                                   std::size_t k,
                                                   bool exclude_known_links);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_SCORING_KERNELS_H_
