#include "serve/scoring_kernels.h"

#include <algorithm>
#include <string>

#include "util/thread_pool.h"

namespace slampred {

Result<std::vector<double>> ScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs) {
  const Matrix& s = model.session.artifact().s;
  const std::size_t n = s.rows();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].u >= n || pairs[i].v >= n) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pairs[i].u) +
          ", " + std::to_string(pairs[i].v) +
          ") outside the served score matrix (" + std::to_string(n) +
          " users)");
    }
  }
  std::vector<double> scores(pairs.size());
  ParallelFor(0, pairs.size(), GrainForWork(8),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  scores[i] = s(pairs[i].u, pairs[i].v);
                }
              });
  return scores;
}

namespace {

// True iff v is a stored entry of row u of the known-links adjacency.
bool IsKnownLink(const CsrMatrix& known, std::size_t u, std::size_t v) {
  const auto& row_ptr = known.row_ptr();
  const auto& col_idx = known.col_idx();
  const auto begin = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[u]);
  const auto end = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[u + 1]);
  return std::binary_search(begin, end, v);
}

}  // namespace

Result<std::vector<TopKEntry>> TopKOnModel(const ServableModel& model,
                                           std::size_t u, std::size_t k,
                                           bool exclude_known_links) {
  const Matrix& s = model.session.artifact().s;
  const std::size_t n = s.rows();
  if (u >= n) {
    return Status::OutOfRange("user " + std::to_string(u) +
                              " outside the served score matrix (" +
                              std::to_string(n) + " users)");
  }
  std::vector<TopKEntry> entries;
  if (k == 0) return entries;
  entries.reserve(std::min(k, n == 0 ? std::size_t{0} : n - 1));

  const bool exclude = exclude_known_links && model.known_links.rows() == n;
  const std::shared_ptr<const TopKRowOrder> order = model.topk.Row(s, u);
  for (const std::uint32_t v : *order) {
    if (exclude && IsKnownLink(model.known_links, u, v)) continue;
    entries.push_back({static_cast<std::size_t>(v), s(u, v)});
    if (entries.size() == k) break;
  }
  return entries;
}

}  // namespace slampred
