#include "serve/scoring_kernels.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "util/thread_pool.h"

namespace slampred {

const char* ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      return "full";
    case ServeTier::kCached:
      return "cached";
    case ServeTier::kDegraded:
      return "degraded";
  }
  return "unknown";
}

Result<std::vector<double>> ScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs) {
  const ScoringSession& session = model.session;
  const std::size_t n = session.num_users();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].u >= n || pairs[i].v >= n) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pairs[i].u) +
          ", " + std::to_string(pairs[i].v) +
          ") outside the served score matrix (" + std::to_string(n) +
          " users)");
    }
  }
  std::vector<double> scores(pairs.size());
  ParallelFor(0, pairs.size(), GrainForWork(8),
              [&](std::size_t i0, std::size_t i1) {
                for (std::size_t i = i0; i < i1; ++i) {
                  scores[i] = session.ScoreUnchecked(pairs[i].u, pairs[i].v);
                }
              });
  return scores;
}

namespace {

// True iff v is a stored entry of row u of the known-links adjacency.
bool IsKnownLink(const CsrMatrix& known, std::size_t u, std::size_t v) {
  const auto& row_ptr = known.row_ptr();
  const auto& col_idx = known.col_idx();
  const auto begin = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[u]);
  const auto end = col_idx.begin() + static_cast<std::ptrdiff_t>(row_ptr[u + 1]);
  return std::binary_search(begin, end, v);
}

// Common-neighbor count of (u, v): the size of the intersection of the
// two sorted CSR rows.
std::size_t CommonNeighborCount(const CsrMatrix& known, std::size_t u,
                                std::size_t v) {
  const auto& row_ptr = known.row_ptr();
  const auto& col_idx = known.col_idx();
  std::size_t a = row_ptr[u];
  const std::size_t a_end = row_ptr[u + 1];
  std::size_t b = row_ptr[v];
  const std::size_t b_end = row_ptr[v + 1];
  std::size_t count = 0;
  while (a < a_end && b < b_end) {
    if (col_idx[a] < col_idx[b]) {
      ++a;
    } else if (col_idx[b] < col_idx[a]) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

// Walks a precomputed hot row's prefix into `entries`. True when the
// prefix answered the request — k entries collected, or the row is
// complete (every candidate was stored, so a short answer is the real
// answer). False leaves `entries` empty for the fallback path: a
// bounded prefix plus exclusions may not reach k even though the full
// row would.
bool ServeFromHotRow(const ServableModel& model, const HotRow& row,
                     std::size_t u, std::size_t k, bool exclude,
                     std::vector<TopKEntry>* entries) {
  for (const HotRowEntry& entry : row.entries) {
    if (exclude && IsKnownLink(model.known_links, u, entry.v)) continue;
    entries->push_back({static_cast<std::size_t>(entry.v), entry.score});
    if (entries->size() == k) break;
  }
  if (entries->size() == k || row.complete) return true;
  entries->clear();
  return false;
}

}  // namespace

Result<std::vector<TopKEntry>> TopKOnModel(const ServableModel& model,
                                           std::size_t u, std::size_t k,
                                           bool exclude_known_links,
                                           ServeTier* tier_out) {
  if (tier_out != nullptr) *tier_out = ServeTier::kFull;
  const ScoringSession& session = model.session;
  const std::size_t n = session.num_users();
  if (u >= n) {
    return Status::OutOfRange("user " + std::to_string(u) +
                              " outside the served score matrix (" +
                              std::to_string(n) + " users)");
  }
  std::vector<TopKEntry> entries;
  if (k == 0) return entries;
  entries.reserve(std::min(k, n == 0 ? std::size_t{0} : n - 1));

  const bool exclude = exclude_known_links && model.known_links.rows() == n;
  if (const HotRow* hot = model.hot_rows.Find(u)) {
    if (ServeFromHotRow(model, *hot, u, k, exclude, &entries)) {
      model.hot_hits.fetch_add(1, std::memory_order_relaxed);
      if (tier_out != nullptr) *tier_out = ServeTier::kCached;
      return entries;
    }
  }
  const std::shared_ptr<const TopKRowOrder> order = model.topk.Row(session, u);
  for (const std::uint32_t v : *order) {
    if (exclude && IsKnownLink(model.known_links, u, v)) continue;
    entries.push_back({static_cast<std::size_t>(v), session.ScoreUnchecked(u, v)});
    if (entries.size() == k) break;
  }
  return entries;
}

bool CachedTopKOnModel(const ServableModel& model, std::size_t u,
                       std::size_t k, bool exclude_known_links,
                       std::vector<TopKEntry>* entries) {
  const ScoringSession& session = model.session;
  const std::size_t n = session.num_users();
  if (u >= n) return false;
  entries->clear();
  const bool exclude = exclude_known_links && model.known_links.rows() == n;
  if (const HotRow* hot = model.hot_rows.Find(u)) {
    if (k == 0) {
      model.hot_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    entries->reserve(std::min(k, n - 1));
    if (ServeFromHotRow(model, *hot, u, k, exclude, entries)) {
      model.hot_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  const std::shared_ptr<const TopKRowOrder> order = model.topk.Peek(u);
  if (order == nullptr) return false;
  if (k == 0) return true;
  entries->reserve(std::min(k, n - 1));
  for (const std::uint32_t v : *order) {
    if (exclude && IsKnownLink(model.known_links, u, v)) continue;
    entries->push_back(
        {static_cast<std::size_t>(v), session.ScoreUnchecked(u, v)});
    if (entries->size() == k) break;
  }
  return true;
}

Result<std::vector<double>> DegradedScorePairsOnModel(
    const ServableModel& model, const std::vector<UserPair>& pairs) {
  const std::size_t n = model.session.num_users();
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].u >= n || pairs[i].v >= n) {
      return Status::OutOfRange(
          "pair " + std::to_string(i) + " = (" + std::to_string(pairs[i].u) +
          ", " + std::to_string(pairs[i].v) +
          ") outside the served score matrix (" + std::to_string(n) +
          " users)");
    }
  }
  std::vector<double> scores(pairs.size(), 0.0);
  const CsrMatrix& known = model.known_links;
  if (known.rows() != n) return scores;  // No adjacency shipped: all 0.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    scores[i] = static_cast<double>(
        CommonNeighborCount(known, pairs[i].u, pairs[i].v));
  }
  return scores;
}

Result<std::vector<TopKEntry>> DegradedTopKOnModel(const ServableModel& model,
                                                   std::size_t u,
                                                   std::size_t k,
                                                   bool exclude_known_links) {
  const std::size_t n = model.session.num_users();
  if (u >= n) {
    return Status::OutOfRange("user " + std::to_string(u) +
                              " outside the served score matrix (" +
                              std::to_string(n) + " users)");
  }
  std::vector<TopKEntry> entries;
  if (k == 0) return entries;
  const CsrMatrix& known = model.known_links;
  if (known.rows() != n) return entries;  // No adjacency: nothing to rank.

  // Count common neighbors of u over the two-hop neighborhood only.
  const auto& row_ptr = known.row_ptr();
  const auto& col_idx = known.col_idx();
  std::unordered_map<std::size_t, std::size_t> counts;
  for (std::size_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
    const std::size_t w = col_idx[e];
    for (std::size_t f = row_ptr[w]; f < row_ptr[w + 1]; ++f) {
      const std::size_t v = col_idx[f];
      if (v == u) continue;
      ++counts[v];
    }
  }
  entries.reserve(counts.size());
  for (const auto& [v, count] : counts) {
    if (exclude_known_links && IsKnownLink(known, u, v)) continue;
    entries.push_back({v, static_cast<double>(count)});
  }
  std::sort(entries.begin(), entries.end(),
            [](const TopKEntry& a, const TopKEntry& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.v < b.v;  // Deterministic tie-break.
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

}  // namespace slampred
