// Artifact quantizer — the float→quantized transform behind
// `slampred_cli quantize` and `fit --quantize` (DESIGN.md §15). Takes a
// fitted float artifact and rewrites its score payload as per-row
// affine u8/u16 codes: a dense or factored-densified matrix becomes one
// QuantizedMatrix section, a sharded model gets one
// QuantizedSymmetricDense block per cluster plus a
// QuantizedSymmetricCsr boundary. Before the float payload is dropped,
// the top-K rows of a configurable hot-user set are snapshotted from
// the FLOAT scores into the artifact's HotRowCache, so serving a hot
// user from the quantized artifact is bit-equal to a float session's
// lazily-built order — the cached tier never touches the quantized
// payload.

#ifndef SLAMPRED_SERVE_ARTIFACT_QUANTIZER_H_
#define SLAMPRED_SERVE_ARTIFACT_QUANTIZER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/model_artifact.h"
#include "linalg/quantized_matrix.h"
#include "util/status.h"

namespace slampred {

/// Quantization knobs.
struct ArtifactQuantizerOptions {
  /// Code width of every quantized section.
  QuantizationBits bits = QuantizationBits::kU8;
  /// Snapshot hot rows for the first `hot_user_count` user ids (ignored
  /// when `hot_user_ids` names an explicit set).
  std::size_t hot_user_count = 0;
  /// Explicit hot-user set; out-of-range ids are skipped.
  std::vector<std::uint32_t> hot_user_ids;
  /// Entries kept per hot row (the served prefix). A row whose full
  /// order fits is marked complete and can answer any k.
  std::size_t hot_row_entries = 256;
};

/// Byte accounting of one quantization run (exact serialized sizes, the
/// numbers fit_report/--stats-json and BENCH_serve.json report).
struct ArtifactQuantizeReport {
  QuantizationBits bits = QuantizationBits::kU8;
  /// Serialized bytes of the input float artifact.
  std::uint64_t float_bytes = 0;
  /// Serialized bytes of the quantized artifact (hot cache included).
  std::uint64_t quantized_bytes = 0;
  /// Hot rows snapshotted into the artifact.
  std::size_t hot_rows = 0;

  /// float_bytes / quantized_bytes (0 before a run).
  double shrink() const {
    return quantized_bytes == 0
               ? 0.0
               : static_cast<double>(float_bytes) /
                     static_cast<double>(quantized_bytes);
  }
};

/// Rewrites `artifact`'s score payload in the quantized form selected
/// by `options` and returns the new artifact. The input must be
/// servable (ScoringSession::FromArtifact accepts it) and not already
/// quantized. Factored artifacts are densified row by row before
/// quantization — an O(n²) transient, so quantize factored models at
/// fit scale, not serve scale; sharded ones never materialise anything
/// n²-sized. Config and adapted tensors carry over unchanged. When
/// `report` is non-null it is filled with exact serialized byte counts
/// of both forms.
Result<ModelArtifact> QuantizeModelArtifact(
    ModelArtifact artifact, const ArtifactQuantizerOptions& options,
    ArtifactQuantizeReport* report = nullptr);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_ARTIFACT_QUANTIZER_H_
