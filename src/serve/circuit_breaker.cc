#include "serve/circuit_breaker.h"

#include <algorithm>

namespace slampred {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(std::move(options)), backoff_(options_.base_backoff) {}

std::chrono::steady_clock::time_point CircuitBreaker::Now() const {
  return options_.clock ? options_.clock() : std::chrono::steady_clock::now();
}

bool CircuitBreaker::AllowRequest() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() - opened_at_ < backoff_) return false;
      state_ = State::kHalfOpen;
      probes_remaining_ = std::max(options_.half_open_budget, 1);
      [[fallthrough]];
    case State::kHalfOpen:
      if (probes_remaining_ <= 0) return false;
      --probes_remaining_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  // A success in any state closes the window: either a healthy closed
  // operation or a half-open probe that proved the path recovered.
  state_ = State::kClosed;
  consecutive_failures_ = 0;
  probes_remaining_ = 0;
  backoff_ = options_.base_backoff;
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ < std::max(options_.failure_threshold, 1)) {
        return false;
      }
      state_ = State::kOpen;
      opened_at_ = Now();
      ++trips_;
      return true;
    case State::kHalfOpen:
      // The probe failed: re-open and double the hold time.
      state_ = State::kOpen;
      opened_at_ = Now();
      backoff_ = std::min(backoff_ * 2, options_.max_backoff);
      probes_remaining_ = 0;
      ++trips_;
      return true;
    case State::kOpen:
      // A straggler failure from an operation admitted before the trip;
      // the breaker is already open, nothing changes.
      return false;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

int CircuitBreaker::consecutive_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_;
}

std::chrono::milliseconds CircuitBreaker::current_backoff() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backoff_;
}

const char* CircuitBreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed:
      return "closed";
    case CircuitBreaker::State::kOpen:
      return "open";
    case CircuitBreaker::State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace slampred
