// CircuitBreaker — the serve-side overload/fault latch shared by the
// swap path (ModelRegistry) and the batch dispatch path (BatchScorer).
//
// State machine:
//
//   closed ──(N consecutive failures)──▶ open
//   open ──(backoff elapsed)──▶ half-open (deterministic probe budget)
//   half-open ──(probe succeeds)──▶ closed (backoff resets)
//   half-open ──(probe fails)──▶ open (backoff doubles, capped)
//
// While open, callers must not run the guarded operation: the registry
// holds the last-good model and the batch scorer answers from the
// degraded tier instead. Every closed→open or half-open→open transition
// is a trip (RecordFailure returns true so the caller can count it in
// RecoveryStats::breaker_trips).
//
// Time is read through an injectable clock so tests can drive the
// open → half-open → closed cycle deterministically; production uses
// std::chrono::steady_clock.

#ifndef SLAMPRED_SERVE_CIRCUIT_BREAKER_H_
#define SLAMPRED_SERVE_CIRCUIT_BREAKER_H_

#include <chrono>
#include <functional>
#include <mutex>

namespace slampred {

/// Breaker tuning knobs.
struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 3;
  /// First open-state hold time; doubles on every half-open failure.
  std::chrono::milliseconds base_backoff{100};
  /// Cap on the exponential backoff.
  std::chrono::milliseconds max_backoff{5000};
  /// Probes allowed through per half-open window (the deterministic
  /// retry budget).
  int half_open_budget = 1;
  /// Test hook: overrides the time source (null = steady_clock::now).
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Thread-safe three-state circuit breaker.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True when the guarded operation may run now: always in closed
  /// state; in open state only once the backoff has elapsed (which
  /// transitions to half-open and consumes one probe); in half-open
  /// state while probe budget remains (consuming one probe per call).
  bool AllowRequest();

  /// Records a successful guarded operation. A half-open probe success
  /// closes the breaker and resets the backoff.
  void RecordSuccess();

  /// Records a failed guarded operation. Returns true when this failure
  /// tripped the breaker open (from closed after `failure_threshold`
  /// consecutive failures, or a failed half-open probe re-opening with a
  /// doubled backoff).
  bool RecordFailure();

  State state() const;

  /// Total closed→open and half-open→open transitions.
  int trips() const;

  /// Consecutive failures seen in the current closed window.
  int consecutive_failures() const;

  /// The open-state hold time currently in effect.
  std::chrono::milliseconds current_backoff() const;

  const CircuitBreakerOptions& options() const { return options_; }

 private:
  std::chrono::steady_clock::time_point Now() const;

  const CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;                       // Guarded by mu_.
  int consecutive_failures_ = 0;                       // Guarded by mu_.
  int trips_ = 0;                                      // Guarded by mu_.
  int probes_remaining_ = 0;                           // Guarded by mu_.
  std::chrono::milliseconds backoff_;                  // Guarded by mu_.
  std::chrono::steady_clock::time_point opened_at_{};  // Guarded by mu_.
};

/// Stable name of a breaker state (for logs and reports).
const char* CircuitBreakerStateName(CircuitBreaker::State state);

}  // namespace slampred

#endif  // SLAMPRED_SERVE_CIRCUIT_BREAKER_H_
