// Fixed-width ASCII table printer used by the experiment harnesses to
// emit paper-style result tables (e.g. Table II rows).

#ifndef SLAMPRED_UTIL_TABLE_PRINTER_H_
#define SLAMPRED_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace slampred {

/// Accumulates rows of string cells and renders them with aligned
/// columns and a header separator.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are kept and
  /// widen the table.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table to `os`.
  void Print(std::ostream& os) const;

  /// Renders the table to a string.
  std::string ToString() const;

  /// Number of data rows added so far.
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slampred

#endif  // SLAMPRED_UTIL_TABLE_PRINTER_H_
