#include "util/stopwatch.h"

namespace slampred {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

namespace {
thread_local double tls_svd_seconds = 0.0;
thread_local int tls_svd_depth = 0;
}  // namespace

SvdTimerScope::SvdTimerScope() : outermost_(tls_svd_depth == 0) {
  ++tls_svd_depth;
}

SvdTimerScope::~SvdTimerScope() {
  --tls_svd_depth;
  if (outermost_) tls_svd_seconds += watch_.ElapsedSeconds();
}

double SvdSecondsThisThread() { return tls_svd_seconds; }

void ResetSvdSecondsThisThread() { tls_svd_seconds = 0.0; }

}  // namespace slampred
