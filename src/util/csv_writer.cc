#include "util/csv_writer.h"

#include <fstream>

#include "util/string_util.h"

namespace slampred {

namespace {

std::string EscapeCell(const std::string& cell) {
  bool needs_quote = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

std::string RenderRow(const std::vector<std::string>& row) {
  std::string line;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) line += ",";
    line += EscapeCell(row[i]);
  }
  line += "\n";
  return line;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void CsvWriter::AddNumericRow(const std::vector<double>& cells,
                              int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(FormatDouble(v, precision));
  rows_.push_back(std::move(row));
}

std::string CsvWriter::ToString() const {
  std::string out = RenderRow(header_);
  for (const auto& row : rows_) out += RenderRow(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  file << ToString();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace slampred
