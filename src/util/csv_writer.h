// CSV output for experiment results so downstream plotting scripts can
// regenerate the paper's figures from the raw series.

#ifndef SLAMPRED_UTIL_CSV_WRITER_H_
#define SLAMPRED_UTIL_CSV_WRITER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace slampred {

/// Buffers rows and writes an RFC-4180-ish CSV file (quotes cells that
/// contain separators, quotes, or newlines).
class CsvWriter {
 public:
  /// Creates a writer with the given header row.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row of string cells.
  void AddRow(std::vector<std::string> cells);

  /// Appends a row of numeric cells formatted with `precision` digits.
  void AddNumericRow(const std::vector<double>& cells, int precision = 6);

  /// Serialises all buffered rows (header first).
  std::string ToString() const;

  /// Writes the CSV to `path`, overwriting any existing file.
  Status WriteToFile(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slampred

#endif  // SLAMPRED_UTIL_CSV_WRITER_H_
