// Deterministic fault injection for robustness testing.
//
// Production code marks interesting failure points with named sites:
//
//   switch (SLAMPRED_FAULT_HIT("svd.prox")) { ... }
//
// Tests arm a site with a FaultSpec (what to inject, after how many
// hits, how many times) through the process-wide FaultInjector. The
// counting is fully deterministic — no randomness, no time — so a test
// that arms "fb.grad_step" to poison the 3rd hit always poisons exactly
// the 3rd gradient step.
//
// When the library is configured with SLAMPRED_FAULT_INJECTION=OFF the
// macro compiles to the constant kNone and the whole mechanism
// disappears from the binary. When compiled in but nothing is armed,
// each hit costs one relaxed atomic load.
//
// Known injection sites wired into the library:
//   "svd.prox"        nuclear-norm prox (proximal.cc, randomized_svd.cc,
//                     factored_solver.cc)
//   "prox.factored"   factored-backend prox only (factored_solver.cc);
//                     "svd.prox" also covers it, this site singles the
//                     factored path out
//   "fb.grad_step"    forward–backward gradient step (forward_backward.cc
//                     and the factored inner loop)
//   "graph_io.parse"  per-line network/anchor parsing (graph_io.cc)
//   "fit.features"    feature stage of the fit pipeline (fit_pipeline.cc)
//   "fit.embedding"   embedding stage of the fit pipeline (fit_pipeline.cc)
//   "fit.solve"       solve stage of the fit pipeline (fit_pipeline.cc)
//   "artifact.read"   model artifact loading (model_artifact.cc)
//   "serve.swap"      model hot-swap validation (serve/model_registry.cc)
//   "serve.batch"     batch dispatch of the scoring service
//                     (serve/batch_scorer.cc)

#ifndef SLAMPRED_UTIL_FAULT_INJECTION_H_
#define SLAMPRED_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

namespace slampred {

/// What an armed site injects when it triggers.
enum class FaultKind : int {
  kNone = 0,           ///< No fault at this hit.
  kPoisonNaN,          ///< Caller should poison its state with NaN.
  kPoisonInf,          ///< Caller should poison its state with +Inf.
  kFailNotConverged,   ///< Caller should fail with kNotConverged.
  kFailNumerical,      ///< Caller should fail with kNumericalError.
  kFailIo,             ///< Caller should fail with kIoError.
};

/// Returns a stable name for a fault kind (for logs and test messages).
const char* FaultKindToString(FaultKind kind);

/// How an armed site behaves over successive hits.
struct FaultSpec {
  FaultKind kind = FaultKind::kPoisonNaN;
  /// Number of hits to let pass before the first trigger (0 = trigger on
  /// the very first hit).
  int trigger_after = 0;
  /// Maximum number of triggers; < 0 means trigger on every eligible hit.
  int max_triggers = 1;
  /// Periodic trigger cadence over the *eligible* hits (those past
  /// trigger_after): <= 1 fires on every eligible hit (the historical
  /// behavior); N > 1 fires on the Nth, 2Nth, 3Nth, ... eligible hit.
  /// Composes with trigger_after (shifts the eligible window) and
  /// max_triggers (caps total firings), so a chaos run can inject a
  /// sustained low-rate fault stream instead of one solid window.
  int every_n = 0;
};

/// Process-wide deterministic fault injector. Thread-safe; intended to
/// be armed from tests only.
class FaultInjector {
 public:
  /// The process-wide instance.
  static FaultInjector& Instance();

  /// Arms (or re-arms) `site` with `spec`, resetting its counters.
  void Arm(const std::string& site, FaultSpec spec);

  /// Disarms `site`; its counters survive for inspection until Reset.
  void Disarm(const std::string& site);

  /// Disarms every site and clears all counters.
  void Reset();

  /// Records a hit at `site` and returns the fault to inject now
  /// (kNone when the site is unarmed or outside its trigger window).
  FaultKind Hit(const std::string& site);

  /// Total hits recorded at `site` since it was last armed/reset.
  int HitCount(const std::string& site) const;

  /// Number of faults actually injected at `site`.
  int TriggerCount(const std::string& site) const;

 private:
  FaultInjector() = default;

  struct SiteState {
    FaultSpec spec;
    bool armed = false;
    int hits = 0;
    int triggers = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, SiteState> sites_;
  // Fast-path gate: number of currently armed sites. Checked without the
  // lock so unarmed hot loops pay one relaxed load per hit.
  std::atomic<int> armed_sites_{0};
};

}  // namespace slampred

#if defined(SLAMPRED_FAULT_INJECTION_ENABLED) && SLAMPRED_FAULT_INJECTION_ENABLED
#define SLAMPRED_FAULT_HIT(site) \
  (::slampred::FaultInjector::Instance().Hit(site))
#else
#define SLAMPRED_FAULT_HIT(site) (::slampred::FaultKind::kNone)
#endif

#endif  // SLAMPRED_UTIL_FAULT_INJECTION_H_
