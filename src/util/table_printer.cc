#include "util/table_printer.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace slampred {

namespace {

// Display width in code points (UTF-8 continuation bytes don't count);
// keeps columns aligned when cells contain "±".
std::size_t DisplayWidth(const std::string& s) {
  std::size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0) != 0x80) ++width;
  }
  return width;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::size_t cols = headers_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());

  std::vector<std::size_t> widths(cols, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = std::max(widths[c], DisplayWidth(headers_[c]));
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      const std::size_t pad = widths[c] - DisplayWidth(cell);
      os << (c == 0 ? "| " : " ") << cell << std::string(pad, ' ') << " |";
    }
    os << "\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < cols; ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace slampred
