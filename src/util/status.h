// Status / Result error-handling primitives for the slampred library.
//
// Fallible operations return a Status (or a Result<T> when they also
// produce a value) instead of throwing. This mirrors the convention used
// by Arrow / RocksDB style database codebases: exceptions never cross the
// public API boundary.

#ifndef SLAMPRED_UTIL_STATUS_H_
#define SLAMPRED_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace slampred {

/// Machine-readable category of a failure.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kNumericalError = 6,
  kNotConverged = 7,
  kIoError = 8,
  kInternal = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
  kUnavailable = 12,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy
/// (the common OK case stores no message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NumericalError(std::string msg) {
    return Status(StatusCode::kNumericalError, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure category (kOk when ok()).
  StatusCode code() const { return code_; }

  /// The failure message (empty when ok()).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error pair: either holds a T or a non-OK Status.
///
/// Usage:
///   Result<Matrix> r = ComputeSomething();
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK status.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status; OK iff a value is held.
  const Status& status() const { return status_; }

  /// Accesses the held value. Requires ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Accesses the held value, or returns `fallback` when failed.
  T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from the evaluated expression.
#define SLAMPRED_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::slampred::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (false)

// Two-level paste indirection so __LINE__ expands before ## is applied;
// a direct `_res_##__LINE__` would paste the literal token `__LINE__`
// and collide across multiple uses in one scope.
#define SLAMPRED_INTERNAL_CONCAT_IMPL(a, b) a##b
#define SLAMPRED_INTERNAL_CONCAT(a, b) SLAMPRED_INTERNAL_CONCAT_IMPL(a, b)

#define SLAMPRED_INTERNAL_ASSIGN_OR_RETURN(result, lhs, expr) \
  auto result = (expr);                                       \
  if (!result.ok()) return result.status();                   \
  lhs = std::move(result).value()

/// Evaluates a Result-returning expression, propagating failure and
/// otherwise binding the value to `lhs`. Usable more than once per
/// scope (the temporary's name is line-unique).
#define SLAMPRED_ASSIGN_OR_RETURN(lhs, expr)           \
  SLAMPRED_INTERNAL_ASSIGN_OR_RETURN(                  \
      SLAMPRED_INTERNAL_CONCAT(_slampred_res_, __LINE__), lhs, expr)

}  // namespace slampred

#endif  // SLAMPRED_UTIL_STATUS_H_
