// Fixed-size worker pool with a deterministic ParallelFor primitive —
// the shared parallel compute layer behind the linalg/optim/features/eval
// hot kernels.
//
// Determinism contract (see DESIGN.md "Parallel execution model"): a
// loop is split into chunks of `grain` consecutive indices, and the
// chunk boundaries depend only on (begin, end, grain) — never on the
// thread count. Kernels built on ParallelFor either (a) give every
// output element exactly one writing chunk, or (b) reduce through
// ParallelReduceSum, which combines per-chunk partials in chunk order
// on the calling thread. Both make results bit-identical for every
// thread count, including the forced-serial SLAMPRED_THREADS=1 path.

#ifndef SLAMPRED_UTIL_THREAD_POOL_H_
#define SLAMPRED_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace slampred {

/// Fixed-size pool (no work stealing). `num_threads` counts the calling
/// thread, so a pool of size N spawns N−1 workers and size 1 spawns
/// none — the exact serial path.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool. Sized on first use from the SLAMPRED_THREADS
  /// environment variable (unset/0/invalid → hardware concurrency, 1
  /// forces serial); `slampred_cli --threads` overrides via Resize().
  static ThreadPool& Global();

  std::size_t num_threads() const { return num_threads_; }

  /// Joins the current workers and respawns at the new size (min 1).
  /// Must not be called from inside a parallel region.
  void Resize(std::size_t num_threads);

  /// Runs `chunk_fn(chunk_begin, chunk_end)` over [begin, end) split
  /// into chunks of `grain` indices (grain 0 is treated as 1). Chunks
  /// may run on any thread in any order; the caller participates and
  /// returns only when every chunk has finished. Runs inline (serial,
  /// in chunk order) when the pool has one thread, when called from
  /// inside another ParallelFor (nested fallback), or when the range
  /// fits a single chunk. The first exception thrown by a chunk is
  /// rethrown on the calling thread after all chunks settle.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& chunk_fn);

  /// Deterministic sum reduction: `chunk_fn` returns the partial sum of
  /// its chunk; partials are combined in ascending chunk order on the
  /// calling thread, so the result is bit-identical for every thread
  /// count (the serial path walks the same chunks in the same order).
  double ParallelReduceSum(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<double(std::size_t, std::size_t)>& chunk_fn);

  /// True while the current thread is executing a ParallelFor chunk
  /// (used for the nested-loop serial fallback).
  static bool InParallelRegion();

  /// Enqueues `fn` to run on a pool worker as soon as one is free and
  /// returns a future that becomes ready when it has run (an exception
  /// thrown by `fn` is captured and rethrown by future.get()). With a
  /// one-thread pool the task runs inline before Submit returns — the
  /// exact serial path. Tasks still queued when the pool is resized or
  /// destroyed run to completion on the resizing/destroying thread, so a
  /// Submit future never dangles. ParallelFor dispatches take priority
  /// over queued tasks; a task may itself call ParallelFor (workers are
  /// not inside a parallel region while running tasks).
  std::future<void> Submit(std::function<void()> fn);

 private:
  struct LoopTask;

  void WorkerLoop();
  static void RunChunks(LoopTask& task);
  void DrainAsyncTasks();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<LoopTask> current_task_;  // Guarded by mutex_.
  std::deque<std::packaged_task<void()>> async_tasks_;  // Guarded by mutex_.
  std::uint64_t epoch_ = 0;                 // Guarded by mutex_.
  std::size_t num_threads_ = 1;
  bool shutdown_ = false;                   // Guarded by mutex_.
};

/// Thread-safe completion counter for fire-and-forget work: producers
/// Add() expected completions (before the work can possibly finish),
/// workers Done() as they complete, and any thread can Wait() until
/// every added completion has been counted. Reusable after Wait().
class CompletionCounter {
 public:
  /// Registers `n` expected completions.
  void Add(std::size_t n = 1);

  /// Records `n` completions; must not overtake Add.
  void Done(std::size_t n = 1);

  /// Blocks until completed == expected.
  void Wait();

  /// Completions recorded so far.
  std::size_t completed() const;

  /// Expected minus completed.
  std::size_t outstanding() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t expected_ = 0;   // Guarded by mutex_.
  std::size_t completed_ = 0;  // Guarded by mutex_.
};

/// Conveniences forwarding to ThreadPool::Global().
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& chunk_fn);
double ParallelReduceSum(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)>& chunk_fn);

/// Minimum scalar work a chunk should carry before parallel dispatch is
/// worth its synchronisation cost; doubles as the small-size serial
/// cutoff (a loop whose total work is below this stays one chunk and
/// runs inline on the caller).
constexpr std::size_t kParallelMinWorkPerChunk = std::size_t{1} << 16;

/// Grain for a loop whose items each cost ~`work_per_item` scalar ops.
/// Deterministic: depends only on the workload, never on thread count.
inline std::size_t GrainForWork(
    std::size_t work_per_item,
    std::size_t min_work = kParallelMinWorkPerChunk) {
  if (work_per_item == 0) work_per_item = 1;
  const std::size_t grain = min_work / work_per_item;
  return grain == 0 ? 1 : grain;
}

}  // namespace slampred

#endif  // SLAMPRED_UTIL_THREAD_POOL_H_
