#include "util/binary_io.h"

#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace slampred {
namespace {

// Lazily built table for the reflected IEEE CRC-32.
const std::uint32_t* Crc32Table() {
  static const auto* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::uint32_t* table = Crc32Table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

void BinaryWriter::WriteU8(std::uint8_t value) {
  buffer_.push_back(static_cast<char>(value));
}

void BinaryWriter::WriteU16(std::uint16_t value) {
  buffer_.push_back(static_cast<char>(value & 0xFFu));
  buffer_.push_back(static_cast<char>((value >> 8) & 0xFFu));
}

void BinaryWriter::WriteU32(std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::WriteU64(std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void BinaryWriter::WriteI32(std::int32_t value) {
  WriteU32(static_cast<std::uint32_t>(value));
}

void BinaryWriter::WriteDouble(double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void BinaryWriter::WriteBytes(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  buffer_.append(value);
}

Status BinaryReader::Truncated(std::size_t need, const char* what) const {
  return Status::IoError("truncated input: need " + std::to_string(need) +
                         " byte(s) for " + what + " at offset " +
                         std::to_string(offset_) + ", " +
                         std::to_string(remaining()) + " available");
}

Result<std::uint8_t> BinaryReader::ReadU8() {
  if (remaining() < 1) return Truncated(1, "u8");
  return data_[offset_++];
}

Result<std::uint16_t> BinaryReader::ReadU16() {
  if (remaining() < 2) return Truncated(2, "u16");
  std::uint16_t value = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[offset_]) |
      (static_cast<std::uint16_t>(data_[offset_ + 1]) << 8));
  offset_ += 2;
  return value;
}

Result<std::uint32_t> BinaryReader::ReadU32() {
  if (remaining() < 4) return Truncated(4, "u32");
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return value;
}

Result<std::uint64_t> BinaryReader::ReadU64() {
  if (remaining() < 8) return Truncated(8, "u64");
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return value;
}

Result<std::int32_t> BinaryReader::ReadI32() {
  auto value = ReadU32();
  if (!value.ok()) return value.status();
  return static_cast<std::int32_t>(value.value());
}

Result<double> BinaryReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits.ok()) return bits.status();
  double value;
  std::uint64_t raw = bits.value();
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

Result<bool> BinaryReader::ReadBool() {
  if (remaining() < 1) return Truncated(1, "bool");
  const std::uint8_t byte = data_[offset_];
  if (byte > 1) {
    return Status::IoError("corrupt bool value " + std::to_string(byte) +
                           " at offset " + std::to_string(offset_));
  }
  ++offset_;
  return byte == 1;
}

Result<std::string> BinaryReader::ReadString() {
  auto size = ReadU64();
  if (!size.ok()) return size.status();
  if (remaining() < size.value()) {
    return Truncated(static_cast<std::size_t>(size.value()), "string body");
  }
  std::string value(reinterpret_cast<const char*>(data_ + offset_),
                    static_cast<std::size_t>(size.value()));
  offset_ += static_cast<std::size_t>(size.value());
  return value;
}

Status BinaryReader::ReadBytes(void* out, std::size_t size) {
  if (remaining() < size) return Truncated(size, "raw bytes");
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::OK();
}

Status BinaryReader::Skip(std::size_t size) {
  if (remaining() < size) return Truncated(size, "skipped bytes");
  offset_ += size;
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string data;
  char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    data.append(chunk, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IoError("read error on '" + path + "'");
  return data;
}

Status WriteStringToFile(const std::string& data, const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), file);
  const bool failed = written != data.size() || std::fclose(file) != 0;
  if (failed) return Status::IoError("write error on '" + path + "'");
  return Status::OK();
}

namespace {

// fsyncs the directory holding `path` so the rename itself is durable.
// Best-effort on platforms without directory fds.
void SyncParentDirectory(const std::string& path) {
#if !defined(_WIN32)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

Status WriteFileAtomic(const std::string& data, const std::string& path) {
  // Same directory as the target so the rename cannot cross devices.
  const std::string tmp_path = path + ".tmp";
  std::FILE* file = std::fopen(tmp_path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + tmp_path + "' for writing");
  }
  bool failed = std::fwrite(data.data(), 1, data.size(), file) != data.size();
  failed = std::fflush(file) != 0 || failed;
#if !defined(_WIN32)
  // Data must reach stable storage BEFORE the rename publishes it;
  // otherwise a crash can expose a renamed-but-empty file.
  failed = ::fsync(::fileno(file)) != 0 || failed;
#endif
  failed = std::fclose(file) != 0 || failed;
  if (failed) {
    std::remove(tmp_path.c_str());
    return Status::IoError("write error on '" + tmp_path + "'");
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::IoError("cannot rename '" + tmp_path + "' over '" + path +
                           "'");
  }
  SyncParentDirectory(path);
  return Status::OK();
}

}  // namespace slampred
