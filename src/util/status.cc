#include "util/status.h"

namespace slampred {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kNumericalError:
      return "NUMERICAL_ERROR";
    case StatusCode::kNotConverged:
      return "NOT_CONVERGED";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace slampred
