// Little-endian binary serialization primitives for on-disk artifacts.
//
// BinaryWriter appends fixed-width primitives to an in-memory buffer;
// BinaryReader consumes the same layout with bounds-checked,
// Status-returning reads. Every read failure is diagnosed with the byte
// offset at which it occurred ("truncated: need 8 bytes at offset 24,
// 3 available"), so a corrupt artifact reports *where* it broke instead
// of crashing. Multi-byte values are stored little-endian regardless of
// host order, making artifacts portable across machines.
//
// Crc32 provides the per-section checksums of the model-artifact format
// (core/model_artifact.h); ReadFileToString / WriteStringToFile are the
// whole-file helpers the artifact layer sits on.

#ifndef SLAMPRED_UTIL_BINARY_IO_H_
#define SLAMPRED_UTIL_BINARY_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace slampred {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention) of `size` bytes.
std::uint32_t Crc32(const void* data, std::size_t size);

/// Appends little-endian primitives to a growing byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(std::uint8_t value);
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteI32(std::int32_t value);
  void WriteDouble(double value);  ///< IEEE-754 bit pattern, little-endian.
  void WriteBool(bool value);      ///< One byte, 0 or 1.
  void WriteBytes(const void* data, std::size_t size);
  /// Length-prefixed (u64) byte string.
  void WriteString(const std::string& value);

  /// Current size of the buffer == offset of the next write.
  std::size_t offset() const { return buffer_.size(); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a byte buffer (non-owning view). Every
/// failed read returns an offset-diagnosed kIoError Status.
class BinaryReader {
 public:
  BinaryReader(const void* data, std::size_t size)
      : data_(static_cast<const unsigned char*>(data)), size_(size) {}
  explicit BinaryReader(const std::string& buffer)
      : BinaryReader(buffer.data(), buffer.size()) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int32_t> ReadI32();
  Result<double> ReadDouble();
  Result<bool> ReadBool();  ///< Rejects bytes other than 0/1.
  /// Length-prefixed (u64) byte string.
  Result<std::string> ReadString();
  /// Copies `size` raw bytes into `out`.
  Status ReadBytes(void* out, std::size_t size);
  /// Advances past `size` bytes without copying.
  Status Skip(std::size_t size);

  std::size_t offset() const { return offset_; }
  std::size_t size() const { return size_; }
  std::size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

  /// Pointer to the current position (valid for remaining() bytes).
  const unsigned char* current() const { return data_ + offset_; }

  /// The truncation diagnosis used by every read; exposed so callers
  /// can phrase their own bounds failures consistently.
  Status Truncated(std::size_t need, const char* what) const;

 private:
  const unsigned char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
};

/// Reads a whole file into a byte string (kIoError on failure).
Result<std::string> ReadFileToString(const std::string& path);

/// Writes a byte string to `path`, replacing any existing file
/// (kIoError on failure).
Status WriteStringToFile(const std::string& data, const std::string& path);

/// Crash-safe replacement of `path`: the bytes are written to a
/// temporary file in the same directory, flushed and fsync'd to stable
/// storage, then atomically rename(2)'d over `path` (and the directory
/// entry fsync'd). A crash or kill at ANY point leaves `path` either
/// absent or holding its complete previous/next contents — never a torn
/// prefix. On failure the temporary is removed and `path` is untouched.
Status WriteFileAtomic(const std::string& data, const std::string& path);

}  // namespace slampred

#endif  // SLAMPRED_UTIL_BINARY_IO_H_
