#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

namespace slampred {

namespace {

// Nested-ParallelFor detection: set while the thread executes chunks.
thread_local bool tls_in_parallel_region = false;

std::size_t ThreadCountFromEnvironment() {
  const char* env = std::getenv("SLAMPRED_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace

// One ParallelFor invocation. Heap-allocated and shared_ptr-held by
// every participating thread, so a worker that wakes late (after the
// loop completed and the pool moved on) still sees a consistent,
// exhausted task instead of dangling caller state.
struct ThreadPool::LoopTask {
  std::function<void(std::size_t, std::size_t)> chunk_fn;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<std::size_t> chunks_done{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;  // Guarded by error_mutex.
};

ThreadPool::ThreadPool(std::size_t num_threads) { Resize(num_threads); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  DrainAsyncTasks();
}

// Runs every still-queued Submit task on the calling thread so their
// futures always complete, even across a Resize or at destruction.
void ThreadPool::DrainAsyncTasks() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (async_tasks_.empty()) return;
      task = std::move(async_tasks_.front());
      async_tasks_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  bool run_inline = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (num_threads_ <= 1 || shutdown_) {
      run_inline = true;
    } else {
      async_tasks_.push_back(std::move(task));
    }
  }
  if (run_inline) {
    task();  // Serial path: completes before Submit returns.
  } else {
    work_cv_.notify_one();
  }
  return future;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(ThreadCountFromEnvironment());
  return *pool;
}

void ThreadPool::Resize(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!workers_.empty() && num_threads == num_threads_) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  DrainAsyncTasks();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
    num_threads_ = num_threads;
    current_task_.reset();
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t t = 0; t + 1 < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::RunChunks(LoopTask& task) {
  tls_in_parallel_region = true;
  std::size_t finished = 0;
  for (;;) {
    const std::size_t c =
        task.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= task.num_chunks) break;
    const std::size_t chunk_begin = task.begin + c * task.grain;
    const std::size_t chunk_end =
        std::min(task.end, chunk_begin + task.grain);
    try {
      task.chunk_fn(chunk_begin, chunk_end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(task.error_mutex);
      if (!task.first_error) task.first_error = std::current_exception();
    }
    ++finished;
  }
  tls_in_parallel_region = false;
  if (finished > 0) {
    task.chunks_done.fetch_add(finished, std::memory_order_acq_rel);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<LoopTask> task;
    std::packaged_task<void()> async_task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || epoch_ != seen_epoch || !async_tasks_.empty();
      });
      if (shutdown_) return;
      if (epoch_ != seen_epoch) {
        // ParallelFor dispatches take priority; a queued Submit task is
        // picked up on a later iteration (or by another worker).
        seen_epoch = epoch_;
        task = current_task_;
      } else {
        async_task = std::move(async_tasks_.front());
        async_tasks_.pop_front();
      }
    }
    if (async_task.valid()) {
      async_task();
      continue;
    }
    if (task == nullptr) continue;
    RunChunks(*task);
    // Empty critical section: orders the chunks_done update before the
    // notification so a caller mid-predicate-check cannot miss it.
    { std::lock_guard<std::mutex> lock(mutex_); }
    done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t span = end - begin;
  const std::size_t num_chunks = (span + grain - 1) / grain;

  // Serial path: one thread, a single chunk, or a nested call. Chunks
  // still run in ascending order so reductions layered on top see the
  // exact partitioning the parallel path uses.
  if (num_threads_ <= 1 || num_chunks == 1 || tls_in_parallel_region) {
    const bool was_in_region = tls_in_parallel_region;
    tls_in_parallel_region = true;
    std::exception_ptr error;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t chunk_begin = begin + c * grain;
      const std::size_t chunk_end = std::min(end, chunk_begin + grain);
      try {
        chunk_fn(chunk_begin, chunk_end);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    tls_in_parallel_region = was_in_region;
    if (error) std::rethrow_exception(error);
    return;
  }

  auto task = std::make_shared<LoopTask>();
  task->chunk_fn = chunk_fn;
  task->begin = begin;
  task->end = end;
  task->grain = grain;
  task->num_chunks = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_task_ = task;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(*task);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return task->chunks_done.load(std::memory_order_acquire) ==
             task->num_chunks;
    });
    if (current_task_ == task) current_task_.reset();
  }
  if (task->first_error) std::rethrow_exception(task->first_error);
}

double ThreadPool::ParallelReduceSum(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)>& chunk_fn) {
  if (begin >= end) return 0.0;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<double> partials(num_chunks, 0.0);
  ParallelFor(begin, end, grain,
              [&](std::size_t chunk_begin, std::size_t chunk_end) {
                partials[(chunk_begin - begin) / grain] =
                    chunk_fn(chunk_begin, chunk_end);
              });
  // Ordered combine: ascending chunk index, on the calling thread.
  double total = 0.0;
  for (double partial : partials) total += partial;
  return total;
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& chunk_fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, chunk_fn);
}

double ParallelReduceSum(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<double(std::size_t, std::size_t)>& chunk_fn) {
  return ThreadPool::Global().ParallelReduceSum(begin, end, grain, chunk_fn);
}

void CompletionCounter::Add(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  expected_ += n;
}

void CompletionCounter::Done(std::size_t n) {
  // Notify under the lock: once a waiter's Wait() returns, the counter
  // may be destroyed immediately, so Done must not touch the condition
  // variable after releasing the mutex.
  std::lock_guard<std::mutex> lock(mutex_);
  completed_ += n;
  cv_.notify_all();
}

void CompletionCounter::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return completed_ >= expected_; });
}

std::size_t CompletionCounter::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_;
}

std::size_t CompletionCounter::outstanding() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return expected_ - completed_;
}

}  // namespace slampred
