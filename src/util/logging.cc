#include "util/logging.h"

#include <cstdio>

namespace slampred {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }

LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(static_cast<int>(level) >= static_cast<int>(g_log_level)) {
  if (enabled_) {
    // Strip leading directories for readability.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace slampred
