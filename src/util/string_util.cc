#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace slampred {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

std::string FormatMeanStd(double mean, double std, int precision) {
  return FormatDouble(mean, precision) + "±" + FormatDouble(std, precision);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace slampred
