// Small string formatting helpers shared by table/CSV writers.

#ifndef SLAMPRED_UTIL_STRING_UTIL_H_
#define SLAMPRED_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace slampred {

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double value, int precision = 3);

/// Formats "mean±std" the way the paper's Table II prints cells.
std::string FormatMeanStd(double mean, double std, int precision = 3);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep` (keeps empty fields).
std::vector<std::string> Split(const std::string& s, char sep);

/// Left-pads (or truncates nothing) `s` with spaces to `width`.
std::string PadLeft(const std::string& s, std::size_t width);

/// Right-pads `s` with spaces to `width`.
std::string PadRight(const std::string& s, std::size_t width);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

}  // namespace slampred

#endif  // SLAMPRED_UTIL_STRING_UTIL_H_
