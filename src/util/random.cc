#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace slampred {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SLAMPRED_CHECK(bound > 0) << "NextBounded requires bound > 0";
  // Lemire-style rejection: threshold is 2^64 mod bound.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  SLAMPRED_CHECK(lo <= hi) << "NextInt requires lo <= hi";
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

int Rng::NextPoisson(double lambda) {
  SLAMPRED_CHECK(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product method.
    const double limit = std::exp(-lambda);
    double prod = NextDouble();
    int n = 0;
    while (prod > limit) {
      prod *= NextDouble();
      ++n;
    }
    return n;
  }
  // Normal approximation with continuity correction.
  const double draw = lambda + std::sqrt(lambda) * NextGaussian() + 0.5;
  return draw < 0.0 ? 0 : static_cast<int>(draw);
}

int Rng::NextGeometric(double p) {
  SLAMPRED_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return static_cast<int>(std::floor(std::log(u) / std::log1p(-p)));
}

std::size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SLAMPRED_CHECK(w >= 0.0) << "negative weight";
    total += w;
  }
  SLAMPRED_CHECK(total > 0.0) << "weights must have positive sum";
  double pick = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    pick -= weights[i];
    if (pick <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  SLAMPRED_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(NextBounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork(std::uint64_t salt) {
  return Rng(NextUint64() ^ (salt * 0x9E3779B97f4A7C15ULL));
}

}  // namespace slampred
