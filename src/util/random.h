// Deterministic, seed-stable pseudo-random generation.
//
// Every stochastic step in the library (data generation, fold splitting,
// negative sampling, anchor subsampling, SGD shuffling) consumes an Rng so
// experiments reproduce bit-for-bit given the same seed. The engine is
// xoshiro256**, seeded through SplitMix64; both are implemented here so the
// stream is stable across standard-library versions.

#ifndef SLAMPRED_UTIL_RANDOM_H_
#define SLAMPRED_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace slampred {

/// xoshiro256** PRNG with convenience draws used across the library.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL);

  /// Next raw 64-bit draw.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using rejection to avoid modulo bias.
  /// `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal draw (Box–Muller, cached second value).
  double NextGaussian();

  /// Bernoulli draw with success probability `p`.
  bool NextBernoulli(double p);

  /// Poisson draw (Knuth for small lambda, normal approx for large).
  int NextPoisson(double lambda);

  /// Geometric draw: number of failures before first success, p in (0,1].
  int NextGeometric(double p);

  /// Samples an index from the unnormalised weight vector. Weights must be
  /// non-negative with a positive sum.
  std::size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order
  /// (partial Fisher–Yates). Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Forks an independent child stream; children with different salts are
  /// decorrelated from the parent and from each other.
  Rng Fork(std::uint64_t salt);

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace slampred

#endif  // SLAMPRED_UTIL_RANDOM_H_
