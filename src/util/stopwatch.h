// Wall-clock timing helper used by benchmarks and experiment harnesses.

#ifndef SLAMPRED_UTIL_STOPWATCH_H_
#define SLAMPRED_UTIL_STOPWATCH_H_

#include <chrono>

namespace slampred {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// RAII scope that accrues wall time spent inside SVD/eigen kernels to a
/// thread-local total (read back via SvdSecondsThisThread). Nested scopes
/// count once: the randomized SVD calls the dense SVD internally, and only
/// the outermost scope adds its elapsed time.
///
/// The counter is thread-local on purpose: a fit runs entirely on one
/// thread (nested ParallelFor falls back to serial), so resetting before
/// Fit and reading after it yields that fit's own SVD total even when
/// several fits run on different pool workers concurrently.
class SvdTimerScope {
 public:
  SvdTimerScope();
  ~SvdTimerScope();

  SvdTimerScope(const SvdTimerScope&) = delete;
  SvdTimerScope& operator=(const SvdTimerScope&) = delete;

 private:
  bool outermost_;
  Stopwatch watch_;
};

/// Seconds accumulated by outermost SvdTimerScope instances on the
/// current thread since the last reset.
double SvdSecondsThisThread();

/// Resets the current thread's SVD time accumulator to zero.
void ResetSvdSecondsThisThread();

}  // namespace slampred

#endif  // SLAMPRED_UTIL_STOPWATCH_H_
