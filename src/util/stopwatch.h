// Wall-clock timing helper used by benchmarks and experiment harnesses.

#ifndef SLAMPRED_UTIL_STOPWATCH_H_
#define SLAMPRED_UTIL_STOPWATCH_H_

#include <chrono>

namespace slampred {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch();

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace slampred

#endif  // SLAMPRED_UTIL_STOPWATCH_H_
