#include "util/fault_injection.h"

namespace slampred {

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "NONE";
    case FaultKind::kPoisonNaN:
      return "POISON_NAN";
    case FaultKind::kPoisonInf:
      return "POISON_INF";
    case FaultKind::kFailNotConverged:
      return "FAIL_NOT_CONVERGED";
    case FaultKind::kFailNumerical:
      return "FAIL_NUMERICAL";
    case FaultKind::kFailIo:
      return "FAIL_IO";
  }
  return "UNKNOWN";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  state.spec = spec;
  state.armed = true;
  state.hits = 0;
  state.triggers = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_sites_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
}

FaultKind FaultInjector::Hit(const std::string& site) {
  if (armed_sites_.load(std::memory_order_relaxed) == 0) {
    return FaultKind::kNone;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return FaultKind::kNone;
  SiteState& state = it->second;
  const int hit_index = state.hits++;
  if (hit_index < state.spec.trigger_after) return FaultKind::kNone;
  if (state.spec.max_triggers >= 0 &&
      state.triggers >= state.spec.max_triggers) {
    return FaultKind::kNone;
  }
  if (state.spec.every_n > 1) {
    // 1-based index among the eligible hits; only multiples of N fire.
    const int eligible = hit_index - state.spec.trigger_after + 1;
    if (eligible % state.spec.every_n != 0) return FaultKind::kNone;
  }
  ++state.triggers;
  return state.spec.kind;
}

int FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

int FaultInjector::TriggerCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.triggers;
}

}  // namespace slampred
