// Minimal leveled logging with stream syntax and cheap CHECK macros.
//
//   SLAMPRED_LOG(INFO) << "fit took " << secs << "s";
//   SLAMPRED_CHECK(rows > 0) << "empty matrix";
//
// The global level defaults to WARNING so library consumers are quiet by
// default; experiments raise it to INFO.

#ifndef SLAMPRED_UTIL_LOGGING_H_
#define SLAMPRED_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace slampred {

/// Severity of a log line; FATAL aborts the process after printing.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that will be emitted.
void SetLogLevel(LogLevel level);

/// Returns the current minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// One log statement: accumulates a message and flushes on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a log/check is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace slampred

#define SLAMPRED_LOG(severity)                                      \
  ::slampred::internal::LogMessage(::slampred::LogLevel::k##severity, \
                                   __FILE__, __LINE__)

// CHECK: always on (also in release builds); failure logs FATAL and aborts.
// The if/else form lets callers stream context: SLAMPRED_CHECK(x) << "msg".
#define SLAMPRED_CHECK(cond)                                       \
  if (cond) {                                                      \
  } else                                                           \
    ::slampred::internal::LogMessage(::slampred::LogLevel::kFatal, \
                                     __FILE__, __LINE__)           \
        << "Check failed: " #cond " "

#define SLAMPRED_DCHECK(cond) SLAMPRED_CHECK(cond)

#endif  // SLAMPRED_UTIL_LOGGING_H_
