// slampred_cli — command-line front end for the library.
//
//   slampred_cli generate --out-dir DIR [--seed N]
//       Generate a synthetic aligned bundle and write target.txt,
//       source.txt and anchors.txt in DIR (graph_io text format).
//
//   slampred_cli generate --out-dir DIR --scale-out 1 [--users N]
//                         [--communities C] [--avg-degree D]
//                         [--power-law A] [--inter-fraction F]
//                         [--coverage F] [--seed N]
//       Structural scale-out bundle: N users (default 100000) with
//       power-law degrees in O(nodes + edges) memory — the input for the
//       partitioned-fit smoke path. No attributes are generated.
//
//   slampred_cli fit --target FILE --source FILE --anchors FILE
//                    --save-model FILE [--method NAME] [--save-tensors 1]
//                    [--solver dense|factored] [--rank R]
//                    [--partition none|auto] [--max-cluster N]
//                    [--min-cluster N] [--inner N] [--outer N]
//                    [--quantize off|u8|u16] [--hot-users N]
//                    [--hot-row-entries N]
//                    [--io-policy POLICY] [--stats-json PATH]
//       Fit once on the full observed structure and write a versioned
//       binary model artifact. The artifact can then be served over and
//       over (`predict --model`, `serve-bench`) with no refit.
//       --quantize writes the score payload as per-row u8/u16 codes
//       (DESIGN.md §15) and --hot-users N snapshots the top-K rows of
//       the first N users from the float scores before they are
//       dropped; the fit report and --stats-json carry the quantized
//       vs float byte counts.
//
//   slampred_cli quantize --model FILE --out FILE [--quantize u8|u16]
//                         [--hot-users N] [--hot-row-entries N]
//                         [--stats-json PATH]
//       Rewrite an existing float artifact in quantized form (default
//       u8) without refitting — the cheap path for large models: fit
//       once in float, quantize in seconds.
//
//   slampred_cli predict --target FILE --source FILE --anchors FILE
//                        [--method NAME] [--top K] [--io-policy POLICY]
//                        [--solver dense|factored] [--rank R]
//                        [--stats-json PATH]
//   slampred_cli predict --model FILE --target FILE
//                        [--top K] [--io-policy POLICY]
//       Print the top-K scored *unobserved* target pairs. The first form
//       fits in-process; the second loads a saved artifact and serves it
//       without running any fit stage. Both forms rank identically for
//       the same model. Any solver recoveries taken during an in-process
//       fit are reported on stderr.
//
//   slampred_cli serve-bench --model FILE [--pairs N] [--rounds R]
//       Load an artifact once, then time batched ScorePairs calls and
//       report the serving throughput in pairs/sec.
//
//   slampred_cli serve-bench --model FILE --mode closed|open
//                            [--concurrency N] [--duration S] [--rate RPS]
//                            [--batch 0|1] [--request-pairs N] [--topk K]
//                            [--swap-under-load 0|1] [--deadline-ms MS]
//                            [--queue-cap N] [--shed-policy newest|oldest]
//                            [--quantize off|u8|u16] [--hot-users N]
//                            [--hot-row-entries N]
//                            [--auc-pairs N] [--target FILE]
//                            [--chaos 0|1] [--json PATH]
//       Concurrent serving load generator (ModelRegistry +
//       ScoringService): closed-loop (N caller threads back-to-back) or
//       open-loop (fixed --rate arrival schedule on the thread pool)
//       traffic, mixed ScorePairs/TopK requests, optional model
//       hot-swapping under load. --deadline-ms attaches a deadline to
//       every request; --queue-cap bounds the admission queue with
//       --shed-policy picking the victim; --chaos arms the serve.swap /
//       serve.batch / artifact.read fault sites on a deterministic
//       schedule, swaps from a crash-safe on-disk serving copy, and
//       verifies every full-tier response bit-exactly. Reports
//       throughput, p50/p95/p99 latency, the error taxonomy and serve
//       tiers; --json writes the report (BENCH_serve.json) for CI.
//       --quantize serves the quantized transform of the artifact
//       instead of the float form; --hot-users N precomputes top-K
//       rows for the first N users (served as tier `cached`);
//       --auc-pairs N with --target FILE adds a sampled
//       link-prediction AUC to the report, so quantized and float runs
//       can be compared. The report always carries artifact bytes,
//       float-equivalent bytes, hot-row counts and the cache hit rate.
//
//   slampred_cli evaluate --target FILE --source FILE --anchors FILE
//                         [--method NAME] [--folds K] [--io-policy POLICY]
//                         [--solver dense|factored] [--rank R]
//                         [--save-model-dir DIR] [--rescore-dir DIR]
//                         [--stats-json PATH]
//       Cross-validated AUC / Precision@100 for one method.
//       --save-model-dir writes one artifact per fold; --rescore-dir
//       skips the fits entirely and rescores those saved artifacts.
//
// --solver picks the CCCP iterate representation for SLAMPRED variants:
// `dense` (default, the bit-exact oracle) or `factored` (S = U·Vᵀ with
// --rank R factors, O(n·r²) prox — see DESIGN.md §13). The backend and
// rank are echoed in the fit report, --stats-json, and the serve-bench
// summary of a factored artifact.
//
// --partition auto replaces the single global fit with the hierarchical
// partitioned solve (DESIGN.md §14): cluster the target adjacency
// (--max-cluster / --min-cluster size bounds), fit each cluster
// independently in parallel, refine cross-cluster pairs from the
// neighbouring cluster factors, and emit a sharded artifact. A fit
// whose clustering yields a single cluster is bit-identical to
// --partition none. Applies to fit, predict and evaluate.
//
// --inner / --outer override the fit iteration budgets (inner proximal
// iterations per CCCP round and CCCP rounds; CLI defaults 60 / 2). The
// CI large-n smoke passes a reduced budget so the end-to-end partitioned
// path fits in its wall-clock bound.
//
// --stats-json PATH writes the fit diagnostics (phase times, sparse-path
// memory, solver recoveries) as one JSON object to PATH ("-" = stdout).
// For `evaluate` it reports the fold-0 fit.
//
// --io-policy is `strict` (default: first malformed input record fails
// the load with a line-numbered error) or `lenient` (bad records are
// skipped; skip counts are reported on stderr).
//
// --threads N sizes the shared worker pool for this invocation (every
// command accepts it). It overrides the SLAMPRED_THREADS environment
// variable; N = 1 forces the exact serial path. Results are
// bit-identical for every thread count.
//
// Methods: SLAMPRED (default), SLAMPRED-T, SLAMPRED-H, PL, PL-T, PL-S,
// SCAN, SCAN-T, SCAN-S, JC, CN, PA. `fit` and `predict` fit SLAMPRED
// variants only.

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/fit_report.h"
#include "core/model_artifact.h"
#include "core/scoring_service.h"
#include "core/scoring_session.h"
#include "datagen/aligned_generator.h"
#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "linalg/quantized_matrix.h"
#include "serve/artifact_quantizer.h"
#include "serve/load_generator.h"
#include "util/binary_io.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace slampred;

// Minimal --flag value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::optional<std::string> GetRequired(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      return std::nullopt;
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::optional<MethodId> MethodFromName(const std::string& name) {
  for (MethodId method : AllMethods()) {
    if (name == MethodIdName(method)) return method;
  }
  std::fprintf(stderr, "unknown method '%s'; valid:", name.c_str());
  for (MethodId method : AllMethods()) {
    std::fprintf(stderr, " %s", MethodIdName(method));
  }
  std::fprintf(stderr, "\n");
  return std::nullopt;
}

// Writes a generated bundle as target.txt / source.txt / anchors.txt.
int WriteBundle(const AlignedNetworks& networks, const std::string& out_dir) {
  const std::string base = out_dir + "/";
  for (const auto& [status, path] :
       {std::make_pair(SaveNetwork(networks.target(), base + "target.txt"),
                       base + "target.txt"),
        std::make_pair(SaveNetwork(networks.source(0), base + "source.txt"),
                       base + "source.txt"),
        std::make_pair(SaveAnchors(networks.anchors(0), base + "anchors.txt"),
                       base + "anchors.txt")}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("target : %s\n", networks.target().Summary().c_str());
  std::printf("source : %s\n", networks.source(0).Summary().c_str());
  std::printf("anchors: %zu\n", networks.anchors(0).size());
  return 0;
}

int Generate(const Flags& flags) {
  const auto out_dir = flags.GetRequired("out-dir");
  if (!out_dir.has_value()) return 2;
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::stoull(flags.Get("seed", "42")));

  const std::string scale_out = flags.Get("scale-out", "0");
  if (scale_out == "1" || scale_out == "true") {
    ScaleOutConfig config;
    config.seed = seed;
    config.num_users = static_cast<std::size_t>(
        std::stoull(flags.Get("users", "100000")));
    config.num_communities = static_cast<std::size_t>(
        std::stoull(flags.Get("communities", "64")));
    config.avg_degree = std::stod(flags.Get("avg-degree", "8"));
    config.power_law_exponent = std::stod(flags.Get("power-law", "2.5"));
    config.inter_community_fraction =
        std::stod(flags.Get("inter-fraction", "0.05"));
    config.source_coverage = std::stod(flags.Get("coverage", "0.7"));
    Stopwatch watch;
    auto generated = GenerateAlignedScaleOut(config);
    if (!generated.ok()) {
      std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
      return 1;
    }
    std::printf("scale-out bundle: %zu users, %zu communities in %.2f s\n",
                config.num_users, config.num_communities,
                watch.ElapsedSeconds());
    return WriteBundle(generated.value().networks, *out_dir);
  }

  auto generated = GenerateAligned(DefaultExperimentConfig(seed));
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  return WriteBundle(generated.value().networks, *out_dir);
}

// Reports what a lenient load had to skip, so silently-degraded input
// is visible on stderr.
void ReportParseStats(const std::string& path, const ParseStats& stats) {
  if (stats.lines_skipped == 0 && stats.duplicate_edges == 0) return;
  std::fprintf(stderr,
               "%s: skipped %zu bad record(s), %zu duplicate(s); first: %s\n",
               path.c_str(), stats.lines_skipped, stats.duplicate_edges,
               stats.first_error.ToString().c_str());
}

Result<ParseOptions> IoPolicyFromFlags(const Flags& flags) {
  const std::string policy_name = flags.Get("io-policy", "strict");
  ParseOptions io;
  if (policy_name == "lenient") {
    io.policy = ParsePolicy::kLenient;
  } else if (policy_name != "strict") {
    return Status::InvalidArgument(
        "--io-policy must be strict or lenient, got " + policy_name);
  }
  return io;
}

Result<AlignedNetworks> LoadBundle(const Flags& flags) {
  const auto target_path = flags.GetRequired("target");
  const auto source_path = flags.GetRequired("source");
  const auto anchors_path = flags.GetRequired("anchors");
  if (!target_path || !source_path || !anchors_path) {
    return Status::InvalidArgument("missing input paths");
  }
  auto io = IoPolicyFromFlags(flags);
  if (!io.ok()) return io.status();

  ParseStats stats;
  auto target = LoadNetwork(*target_path, io.value(), &stats);
  if (!target.ok()) return target.status();
  ReportParseStats(*target_path, stats);
  stats = ParseStats{};
  auto source = LoadNetwork(*source_path, io.value(), &stats);
  if (!source.ok()) return source.status();
  ReportParseStats(*source_path, stats);
  stats = ParseStats{};
  auto anchors = LoadAnchors(*anchors_path, io.value(), &stats);
  if (!anchors.ok()) return anchors.status();
  ReportParseStats(*anchors_path, stats);
  AlignedNetworks bundle(std::move(target).value());
  bundle.AddSource(std::move(source).value(), std::move(anchors).value());
  return bundle;
}

// --solver dense|factored and --rank R, shared by every fitting command
// (fit, predict, evaluate).
Status ApplySolverFlags(const Flags& flags, SlamPredConfig& config) {
  const std::string solver = flags.Get("solver", "dense");
  if (solver == "factored") {
    config.solver_backend = SolverBackend::kFactored;
  } else if (solver != "dense") {
    return Status::InvalidArgument("--solver must be dense or factored, got " +
                                   solver);
  }
  if (flags.Has("rank")) {
    const std::size_t rank =
        static_cast<std::size_t>(std::stoull(flags.Get("rank", "24")));
    if (rank == 0) return Status::InvalidArgument("--rank must be >= 1");
    config.factored.rank = rank;
  }
  return Status::OK();
}

// --partition none|auto plus the --max-cluster / --min-cluster size
// bounds of the hierarchical partitioned solve; shared by every fitting
// command.
Status ApplyPartitionFlags(const Flags& flags, SlamPredConfig& config) {
  const std::string partition = flags.Get("partition", "none");
  if (partition == "auto") {
    config.partition.mode = PartitionMode::kAuto;
  } else if (partition != "none") {
    return Status::InvalidArgument("--partition must be none or auto, got " +
                                   partition);
  }
  if (flags.Has("max-cluster")) {
    const std::size_t cap = static_cast<std::size_t>(
        std::stoull(flags.Get("max-cluster", "1024")));
    if (cap == 0) return Status::InvalidArgument("--max-cluster must be >= 1");
    config.partition.max_cluster_size = cap;
  }
  if (flags.Has("min-cluster")) {
    config.partition.min_cluster_size = static_cast<std::size_t>(
        std::stoull(flags.Get("min-cluster", "8")));
  }
  if (config.partition.min_cluster_size > config.partition.max_cluster_size) {
    return Status::InvalidArgument("--min-cluster exceeds --max-cluster");
  }
  return Status::OK();
}

// --inner / --outer iteration budgets; used by the CI smoke paths to
// run reduced-budget fits at large n. Defaults leave the CLI budget
// (inner 60, outer 2) untouched.
Status ApplyBudgetFlags(const Flags& flags, SlamPredConfig& config) {
  if (flags.Has("inner")) {
    const std::size_t inner = static_cast<std::size_t>(
        std::stoull(flags.Get("inner", "60")));
    if (inner == 0) return Status::InvalidArgument("--inner must be >= 1");
    config.optimization.inner.max_iterations = inner;
  }
  if (flags.Has("outer")) {
    const std::size_t outer = static_cast<std::size_t>(
        std::stoull(flags.Get("outer", "2")));
    if (outer == 0) return Status::InvalidArgument("--outer must be >= 1");
    config.optimization.max_outer_iterations = outer;
  }
  return Status::OK();
}

// One-phrase backend description of a loaded artifact for the
// serve-bench summaries.
std::string ArtifactBackendSummary(const ModelArtifact& artifact) {
  if (artifact.has_shards) {
    std::string out = "sharded, " +
                      std::to_string(artifact.shards.num_shards()) +
                      " shard(s)";
    if (artifact.shards.IsQuantized()) {
      out += ", quantized";
    } else {
      out += ", max rank " + std::to_string(artifact.shards.MaxRank());
    }
    return out;
  }
  if (artifact.has_quantized_s) {
    return std::string("quantized ") +
           QuantizationBitsName(artifact.quantized_s.bits());
  }
  if (artifact.has_low_rank) {
    return "factored, rank " + std::to_string(artifact.low_rank.rank());
  }
  return "dense";
}

// On-disk size of `path` (0 when unreadable).
std::uint64_t FileSizeBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return 0;
  std::fseek(file, 0, SEEK_END);
  const long size = std::ftell(file);
  std::fclose(file);
  return size < 0 ? 0 : static_cast<std::uint64_t>(size);
}

// --quantize off|u8|u16 → nullopt / the code width. `fallback` is the
// mode used when the flag is absent ("off" everywhere except the
// quantize subcommand, which defaults to u8).
Result<std::optional<QuantizationBits>> QuantizeBitsFromFlags(
    const Flags& flags, const std::string& fallback) {
  const std::string mode = flags.Get("quantize", fallback);
  if (mode == "off") return std::optional<QuantizationBits>{};
  if (mode == "u8") {
    return std::optional<QuantizationBits>{QuantizationBits::kU8};
  }
  if (mode == "u16") {
    return std::optional<QuantizationBits>{QuantizationBits::kU16};
  }
  return Status::InvalidArgument("--quantize must be off, u8 or u16, got " +
                                 mode);
}

// The quantizer options shared by fit/predict/quantize: code width from
// `bits`, hot-user set from --hot-users N (the first N ids) and
// --hot-row-entries.
ArtifactQuantizerOptions QuantizerOptionsFromFlags(const Flags& flags,
                                                   QuantizationBits bits) {
  ArtifactQuantizerOptions options;
  options.bits = bits;
  options.hot_user_count = static_cast<std::size_t>(
      std::stoull(flags.Get("hot-users", "0")));
  options.hot_row_entries = static_cast<std::size_t>(
      std::stoull(flags.Get("hot-row-entries", "256")));
  return options;
}

// Sampled link-prediction AUC of the served scores: `sample_pairs`
// random observed edges as positives against as many random non-edges,
// drawn deterministically from `seed`. Returns −1 when the sample is
// degenerate (no edges, or the graph does not match the model).
double SampledAuc(const ScoringSession& session, const SocialGraph& observed,
                  std::size_t sample_pairs, std::uint64_t seed) {
  const std::size_t n = session.num_users();
  if (sample_pairs == 0 || observed.num_users() != n) return -1.0;
  const std::vector<UserPair> edges = observed.Edges();
  if (edges.empty() || observed.Density() >= 1.0) return -1.0;

  std::uint64_t state = seed;
  const auto next = [&state]() {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };

  std::vector<double> positives;
  positives.reserve(sample_pairs);
  for (std::size_t i = 0; i < sample_pairs; ++i) {
    const UserPair& edge = edges[next() % edges.size()];
    positives.push_back(session.ScoreUnchecked(edge.u, edge.v));
  }
  std::vector<double> negatives;
  negatives.reserve(sample_pairs);
  for (std::size_t attempts = 0;
       negatives.size() < sample_pairs && attempts < sample_pairs * 100;
       ++attempts) {
    const std::size_t u = static_cast<std::size_t>(next() % n);
    const std::size_t v = static_cast<std::size_t>(next() % n);
    if (u == v || observed.HasEdge(u, v)) continue;
    negatives.push_back(session.ScoreUnchecked(u, v));
  }
  if (negatives.empty()) return -1.0;

  double wins = 0.0;
  for (const double p : positives) {
    for (const double q : negatives) {
      if (p > q) {
        wins += 1.0;
      } else if (p == q) {
        wins += 0.5;
      }
    }
  }
  return wins / (static_cast<double>(positives.size()) *
                 static_cast<double>(negatives.size()));
}

// The SLAMPRED config both `fit` and the fitting form of `predict` use,
// so a saved artifact and an in-process fit produce bit-identical
// models for the same inputs.
Result<SlamPredConfig> CliModelConfig(const Flags& flags) {
  const std::string method_name = flags.Get("method", "SLAMPRED");
  SlamPredConfig config;
  if (method_name == "SLAMPRED-T") {
    config = SlamPredTargetOnlyConfig();
  } else if (method_name == "SLAMPRED-H") {
    config = SlamPredHomogeneousConfig();
  } else if (method_name != "SLAMPRED") {
    return Status::InvalidArgument(
        "this command fits SLAMPRED variants only (SLAMPRED, SLAMPRED-T, "
        "SLAMPRED-H), got " + method_name);
  }
  config.optimization.inner.max_iterations = 60;
  config.optimization.max_outer_iterations = 2;
  SLAMPRED_RETURN_NOT_OK(ApplySolverFlags(flags, config));
  SLAMPRED_RETURN_NOT_OK(ApplyPartitionFlags(flags, config));
  SLAMPRED_RETURN_NOT_OK(ApplyBudgetFlags(flags, config));
  return config;
}

// Fits the CLI model on the full observed structure; shared by `fit`
// and the fitting form of `predict`.
Result<std::pair<SlamPred, SocialGraph>> FitFromFlags(const Flags& flags) {
  auto bundle = LoadBundle(flags);
  if (!bundle.ok()) return bundle.status();
  auto config = CliModelConfig(flags);
  if (!config.ok()) return config.status();

  SocialGraph observed =
      SocialGraph::FromHeterogeneousNetwork(bundle.value().target());
  SlamPred model(config.value());
  SLAMPRED_RETURN_NOT_OK(model.Fit(bundle.value(), observed));
  if (model.trace().recovery.Total() > 0) {
    std::fprintf(stderr, "solver recoveries: %s\n",
                 model.trace().recovery.ToString().c_str());
  }
  return std::make_pair(std::move(model), std::move(observed));
}

// Prints the shared fit-report block and honors --stats-json.
int EmitFitReport(const Flags& flags, const FitReport& report) {
  PrintFitReport(stdout, report);
  if (flags.Has("stats-json")) {
    const Status written =
        WriteFitReportJson(report, flags.Get("stats-json", "-"));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// Ranks every unobserved target pair with `scorer` and prints the top
// K. Identical for an in-process model and a loaded artifact.
int PrintTopPredictions(const LinkPredictor& scorer,
                        const SocialGraph& observed, std::size_t top_k) {
  std::vector<UserPair> candidates;
  for (std::size_t u = 0; u < observed.num_users(); ++u) {
    for (std::size_t v = u + 1; v < observed.num_users(); ++v) {
      if (!observed.HasEdge(u, v)) candidates.push_back({u, v});
    }
  }
  auto scores = scorer.ScorePairs(candidates);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (scores.value()[a] != scores.value()[b]) {
      return scores.value()[a] > scores.value()[b];
    }
    return a < b;  // Deterministic tie-break by candidate order.
  });

  std::printf("top %zu predicted links (u, v, confidence):\n",
              std::min(top_k, order.size()));
  for (std::size_t i = 0; i < top_k && i < order.size(); ++i) {
    const UserPair& pair = candidates[order[i]];
    std::printf("%6zu %6zu  %.4f\n", pair.u, pair.v,
                scores.value()[order[i]]);
  }
  return 0;
}

int Fit(const Flags& flags) {
  const auto model_path = flags.GetRequired("save-model");
  if (!model_path.has_value()) return 2;
  auto quantize_bits = QuantizeBitsFromFlags(flags, "off");
  if (!quantize_bits.ok()) {
    std::fprintf(stderr, "%s\n", quantize_bits.status().ToString().c_str());
    return 2;
  }
  auto fitted = FitFromFlags(flags);
  if (!fitted.ok()) {
    std::fprintf(stderr, "%s\n", fitted.status().ToString().c_str());
    return 1;
  }
  const SlamPred& model = fitted.value().first;
  FitReport report = MakeFitReport(model);

  const std::string save_tensors = flags.Get("save-tensors", "0");
  auto artifact = MakeModelArtifact(
      model, save_tensors == "1" || save_tensors == "true");
  if (!artifact.ok()) {
    std::fprintf(stderr, "%s\n", artifact.status().ToString().c_str());
    return 1;
  }
  report.artifact.present = true;
  if (quantize_bits.value().has_value()) {
    ArtifactQuantizeReport quantize_report;
    auto quantized = QuantizeModelArtifact(
        std::move(artifact).value(),
        QuantizerOptionsFromFlags(flags, *quantize_bits.value()), &quantize_report);
    if (!quantized.ok()) {
      std::fprintf(stderr, "%s\n", quantized.status().ToString().c_str());
      return 1;
    }
    artifact = std::move(quantized).value();
    report.artifact.mode = QuantizationBitsName(*quantize_bits.value());
    report.artifact.float_artifact_bytes = quantize_report.float_bytes;
    report.artifact.hot_rows = quantize_report.hot_rows;
  }
  const std::string bytes = SerializeModelArtifact(artifact.value());
  report.artifact.artifact_bytes = bytes.size();
  if (report.artifact.mode == "float") {
    report.artifact.float_artifact_bytes = bytes.size();
  }
  const Status saved = SaveModelArtifact(artifact.value(), *model_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  const int report_rc = EmitFitReport(flags, report);
  if (report_rc != 0) return report_rc;
  std::printf("wrote model artifact %s (%zu bytes, format v%u, %s, %s)\n",
              model_path->c_str(), bytes.size(), kModelArtifactFormatVersion,
              SlamPredVariantName(model.config()),
              ArtifactBackendSummary(artifact.value()).c_str());
  return 0;
}

// `quantize --model IN --out OUT [--quantize u8|u16] [--hot-users N]
// [--hot-row-entries N]`: rewrites a float artifact with quantized
// score sections plus a precomputed hot-user cache — no refit, so a
// 9-minute fit quantizes in seconds.
int Quantize(const Flags& flags) {
  const auto model_path = flags.GetRequired("model");
  const auto out_path = flags.GetRequired("out");
  if (!model_path || !out_path) return 2;
  auto quantize_bits = QuantizeBitsFromFlags(flags, "u8");
  if (!quantize_bits.ok()) {
    std::fprintf(stderr, "%s\n", quantize_bits.status().ToString().c_str());
    return 2;
  }
  if (!quantize_bits.value().has_value()) {
    std::fprintf(stderr, "quantize needs --quantize u8 or u16\n");
    return 2;
  }
  auto artifact = LoadModelArtifact(*model_path);
  if (!artifact.ok()) {
    std::fprintf(stderr, "%s\n", artifact.status().ToString().c_str());
    return 1;
  }
  Stopwatch watch;
  ArtifactQuantizeReport report;
  auto quantized = QuantizeModelArtifact(
      std::move(artifact).value(),
      QuantizerOptionsFromFlags(flags, *quantize_bits.value()), &report);
  if (!quantized.ok()) {
    std::fprintf(stderr, "%s\n", quantized.status().ToString().c_str());
    return 1;
  }
  const Status saved = SaveModelArtifact(quantized.value(), *out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf(
      "quantized %s -> %s (%s): %llu bytes from %llu float bytes "
      "(%.2fx smaller), %zu hot row(s), %.2f s\n",
      model_path->c_str(), out_path->c_str(),
      QuantizationBitsName(*quantize_bits.value()),
      static_cast<unsigned long long>(report.quantized_bytes),
      static_cast<unsigned long long>(report.float_bytes), report.shrink(),
      report.hot_rows, watch.ElapsedSeconds());
  if (flags.Has("stats-json")) {
    std::string json = "{\"mode\":\"";
    json += QuantizationBitsName(*quantize_bits.value());
    json += "\",\"artifact_bytes\":" + std::to_string(report.quantized_bytes);
    json += ",\"float_artifact_bytes\":" + std::to_string(report.float_bytes);
    json += ",\"hot_rows\":" + std::to_string(report.hot_rows);
    json += "}\n";
    const std::string json_path = flags.Get("stats-json", "-");
    if (json_path == "-") {
      std::fwrite(json.data(), 1, json.size(), stdout);
    } else {
      const Status written = WriteStringToFile(json, json_path);
      if (!written.ok()) {
        std::fprintf(stderr, "%s\n", written.ToString().c_str());
        return 1;
      }
    }
  }
  return 0;
}

// `predict --model FILE --target FILE`: serve a saved artifact, no fit.
int PredictFromArtifact(const Flags& flags, std::size_t top_k) {
  const auto model_path = flags.GetRequired("model");
  const auto target_path = flags.GetRequired("target");
  if (!model_path || !target_path) return 2;
  auto io = IoPolicyFromFlags(flags);
  if (!io.ok()) {
    std::fprintf(stderr, "%s\n", io.status().ToString().c_str());
    return 1;
  }
  ParseStats stats;
  auto target = LoadNetwork(*target_path, io.value(), &stats);
  if (!target.ok()) {
    std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
    return 1;
  }
  ReportParseStats(*target_path, stats);
  const SocialGraph observed =
      SocialGraph::FromHeterogeneousNetwork(target.value());

  auto quantize_bits = QuantizeBitsFromFlags(flags, "off");
  if (!quantize_bits.ok()) {
    std::fprintf(stderr, "%s\n", quantize_bits.status().ToString().c_str());
    return 2;
  }
  auto session = [&]() -> Result<ScoringSession> {
    if (!quantize_bits.value().has_value()) {
      return ScoringSession::FromFile(*model_path);
    }
    // --quantize: transform the loaded float artifact in memory and
    // serve the dequantizing session instead.
    auto artifact = LoadModelArtifact(*model_path);
    if (!artifact.ok()) return artifact.status();
    auto quantized = QuantizeModelArtifact(
        std::move(artifact).value(),
        QuantizerOptionsFromFlags(flags, *quantize_bits.value()));
    if (!quantized.ok()) return quantized.status();
    return ScoringSession::FromArtifact(std::move(quantized).value());
  }();
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  if (session.value().num_users() != observed.num_users()) {
    std::fprintf(stderr,
                 "model artifact covers %zu users but %s has %zu\n",
                 session.value().num_users(), target_path->c_str(),
                 observed.num_users());
    return 1;
  }
  std::printf("serving %s from %s\n", session.value().name().c_str(),
              model_path->c_str());
  return PrintTopPredictions(session.value(), observed, top_k);
}

int Predict(const Flags& flags) {
  const std::size_t top_k = static_cast<std::size_t>(
      std::stoull(flags.Get("top", "20")));
  if (flags.Has("model")) return PredictFromArtifact(flags, top_k);

  auto quantize_bits = QuantizeBitsFromFlags(flags, "off");
  if (!quantize_bits.ok()) {
    std::fprintf(stderr, "%s\n", quantize_bits.status().ToString().c_str());
    return 2;
  }
  auto fitted = FitFromFlags(flags);
  if (!fitted.ok()) {
    std::fprintf(stderr, "%s\n", fitted.status().ToString().c_str());
    return 1;
  }
  const SlamPred& model = fitted.value().first;
  const int report_rc = EmitFitReport(flags, MakeFitReport(model));
  if (report_rc != 0) return report_rc;
  if (quantize_bits.value().has_value()) {
    // --quantize: rank from the quantized artifact the fit would ship,
    // not the float model — the scores readers of the output will see.
    auto artifact = MakeModelArtifact(model, false);
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s\n", artifact.status().ToString().c_str());
      return 1;
    }
    auto quantized = QuantizeModelArtifact(
        std::move(artifact).value(),
        QuantizerOptionsFromFlags(flags, *quantize_bits.value()));
    if (!quantized.ok()) {
      std::fprintf(stderr, "%s\n", quantized.status().ToString().c_str());
      return 1;
    }
    auto session = ScoringSession::FromArtifact(std::move(quantized).value());
    if (!session.ok()) {
      std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
      return 1;
    }
    std::printf("ranking from quantized scores (%s)\n",
                QuantizationBitsName(*quantize_bits.value()));
    return PrintTopPredictions(session.value(), fitted.value().second, top_k);
  }
  return PrintTopPredictions(model, fitted.value().second, top_k);
}

// `serve-bench --mode closed|open`: the concurrent serving load
// generator over ModelRegistry + ScoringService.
int ServeLoadGen(const Flags& flags, const std::string& model_path) {
  LoadGeneratorOptions options;
  const std::string mode = flags.Get("mode", "closed");
  if (mode == "open") {
    options.mode = LoadGeneratorOptions::Mode::kOpen;
  } else if (mode != "closed") {
    std::fprintf(stderr, "--mode must be closed or open, got %s\n",
                 mode.c_str());
    return 2;
  }
  options.concurrency = static_cast<std::size_t>(
      std::stoull(flags.Get("concurrency", "4")));
  options.duration_seconds = std::stod(flags.Get("duration", "2"));
  options.open_rate_rps = std::stod(flags.Get("rate", "2000"));
  options.pairs_per_request = static_cast<std::size_t>(
      std::stoull(flags.Get("request-pairs", "64")));
  options.top_k = static_cast<std::size_t>(
      std::stoull(flags.Get("topk", "10")));
  options.seed = static_cast<std::uint64_t>(
      std::stoull(flags.Get("seed", "42")));
  const std::string swap = flags.Get("swap-under-load", "0");
  if (swap == "1" || swap == "true") options.swap_every_seconds = 0.25;
  options.deadline_ms = std::stod(flags.Get("deadline-ms", "0"));
  const std::string chaos = flags.Get("chaos", "0");
  options.chaos = chaos == "1" || chaos == "true";

  auto quantize_bits = QuantizeBitsFromFlags(flags, "off");
  if (!quantize_bits.ok()) {
    std::fprintf(stderr, "%s\n", quantize_bits.status().ToString().c_str());
    return 2;
  }
  const std::size_t hot_users = static_cast<std::size_t>(
      std::stoull(flags.Get("hot-users", "0")));
  ModelRegistryOptions registry_options;
  registry_options.hot_row_entries = static_cast<std::size_t>(
      std::stoull(flags.Get("hot-row-entries", "256")));
  registry_options.hot_users.reserve(hot_users);
  for (std::size_t u = 0; u < hot_users; ++u) {
    registry_options.hot_users.push_back(static_cast<std::uint32_t>(u));
  }

  ModelRegistry registry(registry_options);
  std::uint64_t artifact_bytes = 0;
  std::uint64_t float_equiv_bytes = 0;
  Status swapped = Status::OK();
  if (quantize_bits.value().has_value()) {
    // --quantize: transform the float artifact in memory, then publish
    // the quantized form — the hot-user cache the quantizer snapshots
    // rides in, so the registry precomputes nothing at swap time.
    auto artifact = LoadModelArtifact(model_path);
    if (!artifact.ok()) {
      std::fprintf(stderr, "%s\n", artifact.status().ToString().c_str());
      return 1;
    }
    ArtifactQuantizeReport quantize_report;
    auto quantized = QuantizeModelArtifact(
        std::move(artifact).value(),
        QuantizerOptionsFromFlags(flags, *quantize_bits.value()), &quantize_report);
    if (!quantized.ok()) {
      std::fprintf(stderr, "%s\n", quantized.status().ToString().c_str());
      return 1;
    }
    artifact_bytes = quantize_report.quantized_bytes;
    float_equiv_bytes = quantize_report.float_bytes;
    swapped = registry.Swap(std::move(quantized).value());
  } else {
    swapped = registry.SwapFromFile(model_path);
    artifact_bytes = FileSizeBytes(model_path);
    float_equiv_bytes = artifact_bytes;
  }
  if (!swapped.ok()) {
    std::fprintf(stderr, "%s\n", swapped.ToString().c_str());
    return 1;
  }
  if (options.chaos) {
    // Chaos swaps reload from disk so the artifact.read fault site and
    // the last_good rollback run under load. Publish a crash-safe
    // serving copy (primary + sidecar) next to the model and swap at a
    // fast cadence so the deterministic fault schedule runs dry within
    // the bench window.
    const std::string serving_path = model_path + ".serving";
    const auto published = registry.Acquire();
    const Status wrote =
        WriteArtifactAtomic(published->session.artifact(), serving_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
      return 1;
    }
    options.swap_path = serving_path;
    if (options.swap_every_seconds <= 0.0) options.swap_every_seconds = 0.05;
  }
  BatchScorerOptions batch;
  const std::string batching = flags.Get("batch", "1");
  batch.enabled = batching == "1" || batching == "true";
  batch.queue_cap = static_cast<std::size_t>(
      std::stoull(flags.Get("queue-cap", "0")));
  const std::string shed_policy = flags.Get("shed-policy", "newest");
  if (shed_policy == "oldest") {
    batch.shed_policy = ShedPolicy::kRejectOldest;
  } else if (shed_policy != "newest") {
    std::fprintf(stderr, "--shed-policy must be newest or oldest, got %s\n",
                 shed_policy.c_str());
    return 2;
  }
  ScoringService service(&registry, batch);
  const auto model = registry.Acquire();
  std::printf("serving %s (%zu users, version %llu, checksum %08x, %s) "
              "[%zu thread(s)]\n",
              model->session.name().c_str(), model->num_users(),
              static_cast<unsigned long long>(model->version),
              model->checksum,
              ArtifactBackendSummary(model->session.artifact()).c_str(),
              ThreadPool::Global().num_threads());

  auto report = RunLoadGenerator(registry, service, options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  report.value().artifact_bytes = artifact_bytes;
  report.value().float_equiv_bytes = float_equiv_bytes;

  // --auc-pairs N with --target FILE: sampled link-prediction AUC of
  // the served scores (quantized or float) against the observed graph,
  // so the CI leg can assert quantized AUC stays within tolerance of
  // the float run.
  const std::size_t auc_pairs = static_cast<std::size_t>(
      std::stoull(flags.Get("auc-pairs", "0")));
  if (auc_pairs > 0) {
    const std::string target_path = flags.Get("target", "");
    if (target_path.empty()) {
      std::fprintf(stderr, "--auc-pairs needs --target FILE; skipping AUC\n");
    } else {
      ParseStats stats;
      auto target = LoadNetwork(target_path, ParseOptions{}, &stats);
      if (!target.ok()) {
        std::fprintf(stderr, "%s\n", target.status().ToString().c_str());
        return 1;
      }
      const SocialGraph observed =
          SocialGraph::FromHeterogeneousNetwork(target.value());
      const auto served = registry.Acquire();
      report.value().auc =
          SampledAuc(served->session, observed, auc_pairs, options.seed);
    }
  }
  std::printf("%s\n", report.value().ToString().c_str());
  const RecoveryStats recovery = service.recovery();
  if (recovery.Total() > 0) {
    std::fprintf(stderr, "serving recoveries: %s\n",
                 recovery.ToString().c_str());
  }
  if (flags.Has("json")) {
    const std::string json_path = flags.Get("json", "BENCH_serve.json");
    const Status written =
        WriteStringToFile(report.value().ToJson() + "\n", json_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int ServeBench(const Flags& flags) {
  const auto model_path = flags.GetRequired("model");
  if (!model_path.has_value()) return 2;
  if (flags.Has("mode")) return ServeLoadGen(flags, *model_path);
  const std::size_t num_pairs = static_cast<std::size_t>(
      std::stoull(flags.Get("pairs", "200000")));
  const std::size_t rounds = static_cast<std::size_t>(
      std::stoull(flags.Get("rounds", "5")));
  if (num_pairs == 0 || rounds == 0) {
    std::fprintf(stderr, "--pairs and --rounds must be >= 1\n");
    return 2;
  }

  Stopwatch load_watch;
  auto session = ScoringSession::FromFile(*model_path);
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  const double load_seconds = load_watch.ElapsedSeconds();
  const std::size_t n = session.value().num_users();
  std::printf("loaded %s (%zu users, %s) in %.3f s\n",
              session.value().name().c_str(), n,
              ArtifactBackendSummary(session.value().artifact()).c_str(),
              load_seconds);

  // Deterministic batch cycling over the upper triangle.
  std::vector<UserPair> batch;
  batch.reserve(num_pairs);
  std::size_t u = 0, v = 1;
  for (std::size_t i = 0; i < num_pairs; ++i) {
    batch.push_back({u, v});
    if (++v >= n) {
      if (++u >= n - 1) u = 0;
      v = u + 1;
    }
  }

  // Warm-up round, then timed rounds.
  double checksum = 0.0;
  auto warmup = session.value().ScorePairs(batch);
  if (!warmup.ok()) {
    std::fprintf(stderr, "%s\n", warmup.status().ToString().c_str());
    return 1;
  }
  double best_pairs_per_sec = 0.0;
  double total_seconds = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    Stopwatch watch;
    auto scores = session.value().ScorePairs(batch);
    const double seconds = watch.ElapsedSeconds();
    if (!scores.ok()) {
      std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
      return 1;
    }
    checksum += scores.value().front() + scores.value().back();
    total_seconds += seconds;
    const double rate = seconds > 0.0
                            ? static_cast<double>(num_pairs) / seconds
                            : static_cast<double>(num_pairs) * 1e9;
    if (rate > best_pairs_per_sec) best_pairs_per_sec = rate;
    std::printf("round %zu: %zu pairs in %.4f s  (%.0f pairs/sec)\n",
                round + 1, num_pairs, seconds, rate);
  }
  const double mean_rate =
      total_seconds > 0.0
          ? static_cast<double>(num_pairs) * static_cast<double>(rounds) /
                total_seconds
          : best_pairs_per_sec;
  std::printf("serve-bench: %.0f pairs/sec mean, %.0f pairs/sec best "
              "(%zu rounds, checksum %.6f)\n",
              mean_rate, best_pairs_per_sec, rounds, checksum);
  return 0;
}

int Evaluate(const Flags& flags) {
  auto bundle = LoadBundle(flags);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const auto method = MethodFromName(flags.Get("method", "SLAMPRED"));
  if (!method.has_value()) return 2;

  ExperimentOptions options;
  options.num_folds = static_cast<std::size_t>(
      std::stoull(flags.Get("folds", "5")));
  options.slampred.optimization.inner.max_iterations = 60;
  options.slampred.optimization.max_outer_iterations = 2;
  const Status solver_flags = ApplySolverFlags(flags, options.slampred);
  if (!solver_flags.ok()) {
    std::fprintf(stderr, "%s\n", solver_flags.ToString().c_str());
    return 2;
  }
  const Status partition_flags = ApplyPartitionFlags(flags, options.slampred);
  if (!partition_flags.ok()) {
    std::fprintf(stderr, "%s\n", partition_flags.ToString().c_str());
    return 2;
  }
  const Status budget_flags = ApplyBudgetFlags(flags, options.slampred);
  if (!budget_flags.ok()) {
    std::fprintf(stderr, "%s\n", budget_flags.ToString().c_str());
    return 2;
  }
  options.save_model_dir = flags.Get("save-model-dir", "");
  auto runner = ExperimentRunner::Create(bundle.value(), options);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  const std::string rescore_dir = flags.Get("rescore-dir", "");
  auto result = rescore_dir.empty()
                    ? runner.value().RunMethod(*method, 1.0)
                    : runner.value().RescoreMethod(*method, 1.0, rescore_dir);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s over %zu folds%s [%zu thread(s)]:\n", MethodIdName(*method),
              options.num_folds,
              rescore_dir.empty() ? "" : " (rescored from artifacts)",
              ThreadPool::Global().num_threads());
  std::printf("  AUC           : %s\n",
              FormatMeanStd(result.value().auc.mean,
                            result.value().auc.std).c_str());
  std::printf("  Precision@100 : %s\n",
              FormatMeanStd(result.value().precision.mean,
                            result.value().precision.std).c_str());
  if (result.value().memory_stats.peak_bytes > 0) {
    std::printf("fold-0 fit report:\n");
    const int report_rc = EmitFitReport(flags, result.value().fold0_report);
    if (report_rc != 0) return report_rc;
  }
  if (!options.save_model_dir.empty() && rescore_dir.empty()) {
    std::printf("per-fold artifacts written under %s\n",
                options.save_model_dir.c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: slampred_cli "
               "<generate|fit|predict|quantize|serve-bench|evaluate> [--flag "
               "value ...]\n       see the header comment of "
               "tools/slampred_cli.cpp\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  const std::string threads = flags.Get("threads", "");
  if (!threads.empty()) {
    const unsigned long long n = std::stoull(threads);
    if (n == 0) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    ThreadPool::Global().Resize(static_cast<std::size_t>(n));
  }
  if (command == "generate") return Generate(flags);
  if (command == "fit") return Fit(flags);
  if (command == "predict") return Predict(flags);
  if (command == "quantize") return Quantize(flags);
  if (command == "serve-bench") return ServeBench(flags);
  if (command == "evaluate") return Evaluate(flags);
  Usage();
  return 2;
}
