// slampred_cli — command-line front end for the library.
//
//   slampred_cli generate --out-dir DIR [--seed N]
//       Generate a synthetic aligned bundle and write target.txt,
//       source.txt and anchors.txt in DIR (graph_io text format).
//
//   slampred_cli predict --target FILE --source FILE --anchors FILE
//                        [--method NAME] [--top K] [--io-policy POLICY]
//       Fit on the full observed structure and print the top-K scored
//       *unobserved* target pairs. Any solver recoveries taken during
//       the fit are reported on stderr.
//
//   slampred_cli evaluate --target FILE --source FILE --anchors FILE
//                         [--method NAME] [--folds K] [--io-policy POLICY]
//       Cross-validated AUC / Precision@100 for one method.
//
// --io-policy is `strict` (default: first malformed input record fails
// the load with a line-numbered error) or `lenient` (bad records are
// skipped; skip counts are reported on stderr).
//
// --threads N sizes the shared worker pool for this invocation (every
// command accepts it). It overrides the SLAMPRED_THREADS environment
// variable; N = 1 forces the exact serial path. Results are
// bit-identical for every thread count.
//
// Methods: SLAMPRED (default), SLAMPRED-T, SLAMPRED-H, PL, PL-T, PL-S,
// SCAN, SCAN-T, SCAN-S, JC, CN, PA.

#include <algorithm>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "datagen/aligned_generator.h"
#include "eval/experiment.h"
#include "graph/graph_io.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace {

using namespace slampred;

// Minimal --flag value parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::optional<std::string> GetRequired(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      return std::nullopt;
    }
    return it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

std::optional<MethodId> MethodFromName(const std::string& name) {
  for (MethodId method : AllMethods()) {
    if (name == MethodIdName(method)) return method;
  }
  std::fprintf(stderr, "unknown method '%s'; valid:", name.c_str());
  for (MethodId method : AllMethods()) {
    std::fprintf(stderr, " %s", MethodIdName(method));
  }
  std::fprintf(stderr, "\n");
  return std::nullopt;
}

int Generate(const Flags& flags) {
  const auto out_dir = flags.GetRequired("out-dir");
  if (!out_dir.has_value()) return 2;
  const std::uint64_t seed = static_cast<std::uint64_t>(
      std::stoull(flags.Get("seed", "42")));

  auto generated = GenerateAligned(DefaultExperimentConfig(seed));
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const AlignedNetworks& networks = generated.value().networks;
  const std::string base = *out_dir + "/";
  for (const auto& [status, path] :
       {std::make_pair(SaveNetwork(networks.target(), base + "target.txt"),
                       base + "target.txt"),
        std::make_pair(SaveNetwork(networks.source(0), base + "source.txt"),
                       base + "source.txt"),
        std::make_pair(SaveAnchors(networks.anchors(0), base + "anchors.txt"),
                       base + "anchors.txt")}) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", path.c_str());
  }
  std::printf("target : %s\n", networks.target().Summary().c_str());
  std::printf("source : %s\n", networks.source(0).Summary().c_str());
  std::printf("anchors: %zu\n", networks.anchors(0).size());
  return 0;
}

// Reports what a lenient load had to skip, so silently-degraded input
// is visible on stderr.
void ReportParseStats(const std::string& path, const ParseStats& stats) {
  if (stats.lines_skipped == 0 && stats.duplicate_edges == 0) return;
  std::fprintf(stderr,
               "%s: skipped %zu bad record(s), %zu duplicate(s); first: %s\n",
               path.c_str(), stats.lines_skipped, stats.duplicate_edges,
               stats.first_error.ToString().c_str());
}

Result<AlignedNetworks> LoadBundle(const Flags& flags) {
  const auto target_path = flags.GetRequired("target");
  const auto source_path = flags.GetRequired("source");
  const auto anchors_path = flags.GetRequired("anchors");
  if (!target_path || !source_path || !anchors_path) {
    return Status::InvalidArgument("missing input paths");
  }
  const std::string policy_name = flags.Get("io-policy", "strict");
  ParseOptions io;
  if (policy_name == "lenient") {
    io.policy = ParsePolicy::kLenient;
  } else if (policy_name != "strict") {
    return Status::InvalidArgument("--io-policy must be strict or lenient, got " +
                                   policy_name);
  }

  ParseStats stats;
  auto target = LoadNetwork(*target_path, io, &stats);
  if (!target.ok()) return target.status();
  ReportParseStats(*target_path, stats);
  stats = ParseStats{};
  auto source = LoadNetwork(*source_path, io, &stats);
  if (!source.ok()) return source.status();
  ReportParseStats(*source_path, stats);
  stats = ParseStats{};
  auto anchors = LoadAnchors(*anchors_path, io, &stats);
  if (!anchors.ok()) return anchors.status();
  ReportParseStats(*anchors_path, stats);
  AlignedNetworks bundle(std::move(target).value());
  bundle.AddSource(std::move(source).value(), std::move(anchors).value());
  return bundle;
}

int Predict(const Flags& flags) {
  auto bundle = LoadBundle(flags);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const std::size_t top_k = static_cast<std::size_t>(
      std::stoull(flags.Get("top", "20")));

  const SocialGraph observed =
      SocialGraph::FromHeterogeneousNetwork(bundle.value().target());
  SlamPredConfig config;
  config.optimization.inner.max_iterations = 60;
  config.optimization.max_outer_iterations = 2;
  SlamPred model(config);
  const Status fit = model.Fit(bundle.value(), observed);
  if (!fit.ok()) {
    std::fprintf(stderr, "%s\n", fit.ToString().c_str());
    return 1;
  }
  if (model.trace().recovery.Total() > 0) {
    std::fprintf(stderr, "solver recoveries: %s\n",
                 model.trace().recovery.ToString().c_str());
  }
  const FitPhaseTimes& times = model.phase_times();
  std::printf(
      "phase times (s): features %.3f | embedding %.3f | cccp %.3f | "
      "svd %.3f | total %.3f  [%zu thread(s)]\n",
      times.features_seconds, times.embedding_seconds, times.cccp_seconds,
      times.svd_seconds, times.total_seconds,
      ThreadPool::Global().num_threads());
  std::printf("sparse-path memory: %s\n",
              model.memory_stats().ToString().c_str());

  // Rank all unobserved pairs.
  std::vector<UserPair> candidates;
  for (std::size_t u = 0; u < observed.num_users(); ++u) {
    for (std::size_t v = u + 1; v < observed.num_users(); ++v) {
      if (!observed.HasEdge(u, v)) candidates.push_back({u, v});
    }
  }
  auto scores = model.ScorePairs(candidates);
  if (!scores.ok()) return 1;
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores.value()[a] > scores.value()[b];
  });

  std::printf("top %zu predicted links (u, v, confidence):\n",
              std::min(top_k, order.size()));
  for (std::size_t i = 0; i < top_k && i < order.size(); ++i) {
    const UserPair& pair = candidates[order[i]];
    std::printf("%6zu %6zu  %.4f\n", pair.u, pair.v,
                scores.value()[order[i]]);
  }
  return 0;
}

int Evaluate(const Flags& flags) {
  auto bundle = LoadBundle(flags);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const auto method = MethodFromName(flags.Get("method", "SLAMPRED"));
  if (!method.has_value()) return 2;

  ExperimentOptions options;
  options.num_folds = static_cast<std::size_t>(
      std::stoull(flags.Get("folds", "5")));
  options.slampred.optimization.inner.max_iterations = 60;
  options.slampred.optimization.max_outer_iterations = 2;
  auto runner = ExperimentRunner::Create(bundle.value(), options);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  auto result = runner.value().RunMethod(*method, 1.0);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s over %zu folds [%zu thread(s)]:\n", MethodIdName(*method),
              options.num_folds, ThreadPool::Global().num_threads());
  std::printf("  AUC           : %s\n",
              FormatMeanStd(result.value().auc.mean,
                            result.value().auc.std).c_str());
  std::printf("  Precision@100 : %s\n",
              FormatMeanStd(result.value().precision.mean,
                            result.value().precision.std).c_str());
  if (result.value().memory_stats.peak_bytes > 0) {
    std::printf("  sparse-path memory (fold 0): %s\n",
                result.value().memory_stats.ToString().c_str());
  }
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: slampred_cli <generate|predict|evaluate> [--flag "
               "value ...]\n       see the header comment of "
               "tools/slampred_cli.cpp\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  const Flags flags(argc, argv);
  const std::string threads = flags.Get("threads", "");
  if (!threads.empty()) {
    const unsigned long long n = std::stoull(threads);
    if (n == 0) {
      std::fprintf(stderr, "--threads must be >= 1\n");
      return 2;
    }
    ThreadPool::Global().Resize(static_cast<std::size_t>(n));
  }
  if (command == "generate") return Generate(flags);
  if (command == "predict") return Predict(flags);
  if (command == "evaluate") return Evaluate(flags);
  Usage();
  return 2;
}
