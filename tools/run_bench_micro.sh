#!/usr/bin/env sh
# Runs the bench_micro kernel suite and records the serial-vs-parallel
# timings to BENCH_micro.json at the repo root.
#
# Usage: tools/run_bench_micro.sh [BUILD_DIR] [extra bench_micro flags...]
#   BUILD_DIR defaults to ./build. Extra flags are passed through, e.g.
#   --benchmark_min_time=0.01s for the CI smoke run.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="${1:-$repo_root/build}"
[ $# -gt 0 ] && shift

bench_bin="$build_dir/bench/bench_micro"
if [ ! -x "$bench_bin" ]; then
  echo "bench_micro not found at $bench_bin — build it first:" >&2
  echo "  cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' --target bench_micro" >&2
  exit 1
fi

exec "$bench_bin" \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json \
  "$@"
