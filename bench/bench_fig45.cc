// EXP-F4 / EXP-F5 — reproduces Figures 4 and 5: sensitivity of SLAMPRED
// to the intimacy-term weights.
//   Figure 4: sweep α_s with α_t fixed at 0.0 and 1.0.
//   Figure 5: sweep α_t with α_s fixed at 0.0 and 1.0.
// The sweep extends past the paper's [0, 1] grid to 2.0 so the
// "too-large weight overfits the attribute information" regime
// (Section IV-D2) is visible.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace slampred;

// Runs SLAMPRED across all folds for one (α_t, α_s) pair.
MethodResult RunWeighted(const GeneratedAligned& generated,
                         const ExperimentOptions& base, double alpha_t,
                         double alpha_s) {
  ExperimentOptions options = base;
  options.slampred.alpha_target = alpha_t;
  options.slampred.alpha_sources = {alpha_s};
  auto runner = ExperimentRunner::Create(generated.networks, options);
  SLAMPRED_CHECK(runner.ok()) << runner.status().ToString();
  auto result = runner.value().RunMethod(MethodId::kSlamPred, 1.0);
  SLAMPRED_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

void Sweep(const char* figure, const char* swept, const char* fixed,
           bool sweep_alpha_s, const GeneratedAligned& generated,
           const ExperimentOptions& options, CsvWriter& csv) {
  std::printf("--- %s: sweep %s with fixed %s ---\n", figure, swept, fixed);
  const std::vector<double> sweep_values = {0.0, 0.2, 0.5, 1.0, 1.5, 2.0};
  for (double fixed_value : {0.0, 1.0}) {
    TablePrinter table({swept, "AUC", "Precision@100"});
    for (double value : sweep_values) {
      const double alpha_t = sweep_alpha_s ? fixed_value : value;
      const double alpha_s = sweep_alpha_s ? value : fixed_value;
      const MethodResult result =
          RunWeighted(generated, options, alpha_t, alpha_s);
      table.AddRow({FormatDouble(value, 1),
                    FormatMeanStd(result.auc.mean, result.auc.std),
                    FormatMeanStd(result.precision.mean,
                                  result.precision.std)});
      csv.AddRow({figure, FormatDouble(alpha_t, 2), FormatDouble(alpha_s, 2),
                  FormatDouble(result.auc.mean, 4),
                  FormatDouble(result.precision.mean, 4)});
    }
    std::printf("%s = %.1f:\n", fixed, fixed_value);
    std::printf("%s", table.ToString().c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  bench::Banner("Figures 4 & 5",
                "parameter analysis of the intimacy weights α_t, α_s");

  const GeneratedAligned generated = bench::MakeBundle();
  ExperimentOptions options = bench::MakeOptions();
  // Sweeps run 24 full SLAMPRED fits per figure; a slightly shorter
  // inner loop keeps the bench in the minutes range without moving the
  // curve shapes.
  options.slampred.optimization.inner.max_iterations =
      static_cast<int>(bench::EnvSize("SLAMPRED_BENCH_FIG45_INNER", 40));

  CsvWriter csv({"figure", "alpha_t", "alpha_s", "auc", "precision"});
  Sweep("Figure 4", "alpha_s", "alpha_t", /*sweep_alpha_s=*/true, generated,
        options, csv);
  Sweep("Figure 5", "alpha_t", "alpha_s", /*sweep_alpha_s=*/false, generated,
        options, csv);

  if (csv.WriteToFile("fig45_parameters.csv").ok()) {
    std::printf("raw series written to fig45_parameters.csv\n");
  }
  return 0;
}
