// EXP-T2 — reproduces Table II: AUC and Precision@100 of all twelve
// methods across anchor-link sampling ratios 0.0 … 1.0.
//
// Methods that ignore the source networks are evaluated once and their
// row repeated, exactly as their columns repeat in the paper's table.
//
// Environment knobs: SLAMPRED_BENCH_FOLDS (default 3; paper uses 5),
// SLAMPRED_BENCH_RATIO_STEP (default 2 → ratios 0.0, 0.2, …; set 1 for
// the paper's full 0.1 grid), SLAMPRED_BENCH_SEED.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "util/csv_writer.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;
  bench::Banner("Table II",
                "method comparison across anchor link sampling ratios");

  const GeneratedAligned generated = bench::MakeBundle();
  const ExperimentOptions options = bench::MakeOptions();
  auto runner = ExperimentRunner::Create(generated.networks, options);
  SLAMPRED_CHECK(runner.ok()) << runner.status().ToString();

  const std::size_t step = bench::EnvSize("SLAMPRED_BENCH_RATIO_STEP", 2);
  std::vector<double> ratios;
  for (std::size_t tick = 0; tick <= 10; tick += step) {
    ratios.push_back(static_cast<double>(tick) / 10.0);
  }

  std::vector<std::string> headers = {"measure", "method"};
  for (double r : ratios) headers.push_back(FormatDouble(r, 1));
  TablePrinter auc_table(headers);
  TablePrinter precision_table(headers);
  CsvWriter csv({"method", "ratio", "auc_mean", "auc_std",
                 "precision_mean", "precision_std"});

  Stopwatch total;
  for (MethodId method : AllMethods()) {
    std::vector<std::string> auc_row = {"AUC", MethodIdName(method)};
    std::vector<std::string> precision_row = {"P@100",
                                              MethodIdName(method)};
    // Ratio-independent methods: evaluate once, repeat the cell.
    std::map<int, MethodResult> cache;
    for (double ratio : ratios) {
      const int key = MethodUsesSources(method)
                          ? static_cast<int>(ratio * 1000)
                          : -1;
      if (cache.find(key) == cache.end()) {
        Stopwatch watch;
        auto result = runner.value().RunMethod(method, ratio);
        SLAMPRED_CHECK(result.ok())
            << MethodIdName(method) << ": " << result.status().ToString();
        std::fprintf(stderr, "  %-10s ratio %.1f  auc %.3f  (%.1fs)\n",
                     MethodIdName(method), ratio, result.value().auc.mean,
                     watch.ElapsedSeconds());
        cache.emplace(key, std::move(result).value());
      }
      const MethodResult& r = cache.at(key);
      auc_row.push_back(FormatMeanStd(r.auc.mean, r.auc.std));
      precision_row.push_back(
          FormatMeanStd(r.precision.mean, r.precision.std));
      csv.AddRow({MethodIdName(method), FormatDouble(ratio, 1),
                  FormatDouble(r.auc.mean, 4), FormatDouble(r.auc.std, 4),
                  FormatDouble(r.precision.mean, 4),
                  FormatDouble(r.precision.std, 4)});
    }
    auc_table.AddRow(auc_row);
    precision_table.AddRow(precision_row);
  }

  std::printf("AUC by anchor-link sampling ratio\n");
  std::printf("%s", auc_table.ToString().c_str());
  std::printf("\nPrecision@100 by anchor-link sampling ratio\n");
  std::printf("%s", precision_table.ToString().c_str());
  std::printf("\ntotal time: %.1fs\n", total.ElapsedSeconds());

  const Status written = csv.WriteToFile("table2_results.csv");
  if (written.ok()) {
    std::printf("raw series written to table2_results.csv\n");
  }
  return 0;
}
