// EXP-T1 — reproduces Table I: properties of the heterogeneous networks
// (node and link counts per type for the target and source networks).

#include <cstdio>

#include "bench_common.h"
#include "graph/heterogeneous_network.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;
  bench::Banner("Table I", "properties of the heterogeneous networks");

  const GeneratedAligned generated = bench::MakeBundle();
  const HeterogeneousNetwork& target = generated.networks.target();
  const HeterogeneousNetwork& source = generated.networks.source(0);

  auto count = [](const HeterogeneousNetwork& net, NodeType type) {
    return std::to_string(net.NumNodes(type));
  };
  auto edges = [](const HeterogeneousNetwork& net, EdgeType type) {
    return std::to_string(net.NumEdges(type));
  };

  TablePrinter table({"", "property", target.name(), source.name()});
  table.AddRow({"# node", "user", count(target, NodeType::kUser),
                count(source, NodeType::kUser)});
  table.AddRow({"", "tweet/tip", count(target, NodeType::kPost),
                count(source, NodeType::kPost)});
  table.AddRow({"", "location", count(target, NodeType::kLocation),
                count(source, NodeType::kLocation)});
  table.AddRow({"# link", "friend/follow", edges(target, EdgeType::kFriend),
                edges(source, EdgeType::kFriend)});
  table.AddRow({"", "write", edges(target, EdgeType::kWrite),
                edges(source, EdgeType::kWrite)});
  table.AddRow({"", "locate", edges(target, EdgeType::kCheckin),
                edges(source, EdgeType::kCheckin)});
  std::printf("%s", table.ToString().c_str());

  std::printf("\nanchor links (shared users): %zu\n",
              generated.networks.anchors(0).size());
  std::printf("target density: %.4f, source density: %.4f\n",
              SocialGraph::FromHeterogeneousNetwork(target).Density(),
              SocialGraph::FromHeterogeneousNetwork(source).Density());
  return 0;
}
