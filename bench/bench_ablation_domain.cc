// EXP-A2 — ablation of the feature-space projection (Section IV-E
// "Domain Adaption"): SLAMPRED with the Theorem-1 projection vs. the
// passthrough that transfers raw source features through the anchors
// with no adaptation — the transfer style of the PL/SCAN baselines.

#include <cstdio>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;
  bench::Banner("Ablation A2",
                "feature-space projection vs raw-feature transfer");

  const GeneratedAligned generated = bench::MakeBundle();
  const ExperimentOptions base = bench::MakeOptions();

  TablePrinter table({"transfer mode", "anchor ratio", "AUC",
                      "Precision@100"});
  for (bool adapt : {true, false}) {
    ExperimentOptions options = base;
    options.slampred.domain_adaptation = adapt;
    auto runner = ExperimentRunner::Create(generated.networks, options);
    SLAMPRED_CHECK(runner.ok()) << runner.status().ToString();
    for (double ratio : {0.5, 1.0}) {
      auto run = runner.value().RunMethod(MethodId::kSlamPred, ratio);
      SLAMPRED_CHECK(run.ok()) << run.status().ToString();
      const MethodResult& result = run.value();
      table.AddRow({adapt ? "Theorem-1 projection" : "raw passthrough",
                    FormatDouble(ratio, 1),
                    FormatMeanStd(result.auc.mean, result.auc.std),
                    FormatMeanStd(result.precision.mean,
                                  result.precision.std)});
    }
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
