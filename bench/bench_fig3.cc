// EXP-F3 — reproduces Figure 3: convergence of the iterative CCCP.
// Plots (as printed series + CSV) the ℓ₁ norm of the iterate ‖S^h‖₁ and
// of its change ‖S^h − S^{h−1}‖₁ per proximal step, in the paper's
// small-learning-rate regime (θ = 0.001, hundreds of iterations).

#include <cstdio>

#include "bench_common.h"
#include "core/fit_report.h"
#include "core/slampred.h"
#include "eval/link_split.h"
#include "util/csv_writer.h"
#include "util/string_util.h"

int main() {
  using namespace slampred;
  bench::Banner("Figure 3", "convergence analysis of the iterative CCCP");

  const GeneratedAligned generated = bench::MakeBundle();
  const SocialGraph full_graph =
      SocialGraph::FromHeterogeneousNetwork(generated.networks.target());
  Rng rng(7);
  auto folds = SplitLinks(full_graph, 5, rng);
  SLAMPRED_CHECK(folds.ok()) << folds.status().ToString();
  const SocialGraph train_graph =
      full_graph.WithEdgesRemoved(folds.value()[0].test_edges);

  SlamPredConfig config;
  // Small-step regime as in the paper's Figure 3 (their θ = 0.001 pairs
  // with an unnormalised loss; 0.01 reaches the same stationary point on
  // this library's normalised objective within the plotted window).
  config.optimization.inner.theta =
      bench::EnvSize("SLAMPRED_BENCH_FIG3_THETA_MILLI", 10) / 1000.0;
  config.optimization.inner.max_iterations =
      static_cast<int>(bench::EnvSize("SLAMPRED_BENCH_FIG3_STEPS", 400));
  config.optimization.inner.tol = 0.0;  // Record the full series.
  config.optimization.max_outer_iterations = 1;

  SlamPred model(config);
  const Status fit = model.Fit(generated.networks, train_graph);
  SLAMPRED_CHECK(fit.ok()) << fit.ToString();
  const auto& trace = model.trace().steps;

  CsvWriter csv({"iteration", "s_norm_l1", "s_change_l1"});
  std::printf("iteration   ||S^h||_1    ||S^h - S^(h-1)||_1\n");
  for (std::size_t h = 0; h < trace.s_norm_l1.size(); ++h) {
    csv.AddNumericRow({static_cast<double>(h + 1), trace.s_norm_l1[h],
                       trace.s_change_l1[h]});
    if ((h + 1) % 25 == 0 || h == 0) {
      std::printf("%9zu   %9.2f    %.4f\n", h + 1, trace.s_norm_l1[h],
                  trace.s_change_l1[h]);
    }
  }

  const double first = trace.s_change_l1.front();
  const double last = trace.s_change_l1.back();
  std::printf("\nchange shrank from %.3f to %.5f over %zu steps "
              "(paper: converges within ~300 iterations)\n",
              first, last, trace.s_change_l1.size());
  const std::string csv_path = bench::OutDir() + "/fig3_convergence.csv";
  if (csv.WriteToFile(csv_path).ok()) {
    std::printf("raw series written to %s\n", csv_path.c_str());
  }
  PrintFitReport(stdout, MakeFitReport(model));
  return 0;
}
