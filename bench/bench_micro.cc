// EXP-M — google-benchmark micro-benchmarks of the numerical kernels the
// experiments spend their time in: GEMM, SVD, symmetric eigen, the two
// proximal operators, feature extraction and AUC computation.

#include <benchmark/benchmark.h>

#include "datagen/aligned_generator.h"
#include "eval/metrics.h"
#include "features/structural_features.h"
#include "linalg/matrix.h"
#include "linalg/randomized_svd.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "optim/proximal.h"
#include "util/random.h"

namespace slampred {
namespace {

Matrix RandomMatrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(n, n, rng);
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, 1);
  const Matrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Complexity();

void BM_Svd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, 3);
  for (auto _ : state) {
    auto svd = ComputeSvd(a);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_SymmetricEigen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, 4).Symmetrized();
  for (auto _ : state) {
    auto eig = ComputeSymmetricEigen(a);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ProxL1(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProxL1(s, 0.1));
  }
}
BENCHMARK(BM_ProxL1)->Arg(64)->Arg(256);

void BM_ProxNuclearSymmetric(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix s = RandomMatrix(n, 6).Symmetrized();
  for (auto _ : state) {
    auto prox = ProxNuclearSymmetric(s, 0.1);
    benchmark::DoNotOptimize(prox);
  }
}
BENCHMARK(BM_ProxNuclearSymmetric)->Arg(32)->Arg(64)->Arg(128);

void BM_ProxNuclearRandomized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  // Near-low-rank input: the regime where the sketch pays off.
  Rng rng(7);
  const Matrix u = Matrix::RandomGaussian(n, 8, rng);
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < 8; ++r) sum += u(i, r) * u(j, r);
      s(i, j) = sum;
    }
  }
  RandomizedSvdOptions options;
  options.rank = 16;
  for (auto _ : state) {
    auto prox = ProxNuclearRandomized(s, 0.1, options);
    benchmark::DoNotOptimize(prox);
  }
}
BENCHMARK(BM_ProxNuclearRandomized)->Arg(64)->Arg(128)->Arg(256);

SocialGraph BenchGraph(std::size_t n) {
  Rng rng(7);
  SocialGraph g(n);
  const std::size_t edges = n * 3;
  while (g.num_edges() < edges) {
    g.AddEdge(rng.NextBounded(n), rng.NextBounded(n));
  }
  return g;
}

void BM_CommonNeighbors(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CommonNeighborsMap(g));
  }
}
BENCHMARK(BM_CommonNeighbors)->Arg(128)->Arg(256);

void BM_TruncatedKatz(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TruncatedKatzMap(g));
  }
}
BENCHMARK(BM_TruncatedKatz)->Arg(64)->Arg(128);

void BM_Auc(benchmark::State& state) {
  Rng rng(9);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.2) ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAuc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(1000)->Arg(10000);

void BM_GenerateBundle(benchmark::State& state) {
  for (auto _ : state) {
    AlignedGeneratorConfig config = DefaultExperimentConfig(11);
    config.population.num_personas =
        static_cast<std::size_t>(state.range(0));
    auto generated = GenerateAligned(config);
    benchmark::DoNotOptimize(generated);
  }
}
BENCHMARK(BM_GenerateBundle)->Arg(60)->Arg(120);

}  // namespace
}  // namespace slampred

BENCHMARK_MAIN();
