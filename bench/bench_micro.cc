// EXP-M — google-benchmark micro-benchmarks of the numerical kernels the
// experiments spend their time in: GEMM, SVD, symmetric eigen, the two
// proximal operators, feature extraction and AUC computation.
//
// Parallelized kernels run over a (n, threads) grid so serial vs.
// parallel timings land in the same report; pass
// --benchmark_out=BENCH_micro.json --benchmark_out_format=json (or use
// the `bench_micro_json` CMake target / tools/run_bench_micro.sh) to
// record them. Results are bit-identical across the threads axis by the
// pool's determinism contract; only the timing changes.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "core/scoring_session.h"
#include "datagen/aligned_generator.h"
#include "eval/metrics.h"
#include "linalg/quantized_matrix.h"
#include "serve/artifact_quantizer.h"
#include "serve/topk_index.h"
#include "features/feature_tensor.h"
#include "features/structural_features.h"
#include "graph/partitioner.h"
#include "graph/social_graph.h"
#include "linalg/csr_matrix.h"
#include "linalg/matrix.h"
#include "linalg/matrix_ops.h"
#include "linalg/qr.h"
#include "linalg/randomized_svd.h"
#include "linalg/sparse_tensor3.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "optim/cccp.h"
#include "optim/factored_solver.h"
#include "optim/guardrails.h"
#include "optim/objective.h"
#include "optim/proximal.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace slampred {
namespace {

// Pins the global pool to the benchmark's `threads` argument for the
// duration of one benchmark run, restoring the previous size after.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(std::size_t threads)
      : previous_(ThreadPool::Global().num_threads()) {
    ThreadPool::Global().Resize(threads);
  }
  ~ThreadCountGuard() { ThreadPool::Global().Resize(previous_); }

  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  std::size_t previous_;
};

// (n, threads) grid for the parallelized kernels.
void SizeThreadGrid(benchmark::internal::Benchmark* b,
                    std::vector<std::int64_t> sizes) {
  b->ArgsProduct({std::move(sizes), {1, 4}})->ArgNames({"n", "threads"});
}

Matrix RandomMatrix(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return Matrix::RandomGaussian(n, n, rng);
}

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix a = RandomMatrix(n, 1);
  const Matrix b = RandomMatrix(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Gemm)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {32, 64, 128, 256});
});

void BM_MultiplyABt(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix a = RandomMatrix(n, 12);
  const Matrix b = RandomMatrix(n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultiplyABt(a, b));
  }
}
BENCHMARK(BM_MultiplyABt)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 128, 256});
});

void BM_GramAtA(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix a = RandomMatrix(n, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GramAtA(a));
  }
}
BENCHMARK(BM_GramAtA)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 128, 256});
});

void BM_Svd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, 3);
  for (auto _ : state) {
    auto svd = ComputeSvd(a);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_Svd)->Arg(16)->Arg(32)->Arg(64);

void BM_RandomizedSvd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix a = RandomMatrix(n, 15);
  RandomizedSvdOptions options;
  options.rank = 16;
  for (auto _ : state) {
    auto svd = ComputeRandomizedSvd(a, options);
    benchmark::DoNotOptimize(svd);
  }
}
BENCHMARK(BM_RandomizedSvd)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 128, 256});
});

void BM_SymmetricEigen(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, 4).Symmetrized();
  for (auto _ : state) {
    auto eig = ComputeSymmetricEigen(a);
    benchmark::DoNotOptimize(eig);
  }
}
BENCHMARK(BM_SymmetricEigen)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_ProxL1(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix s = RandomMatrix(n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProxL1(s, 0.1));
  }
}
BENCHMARK(BM_ProxL1)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 256, 512});
});

void BM_ProxNuclearSymmetric(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const Matrix s = RandomMatrix(n, 6).Symmetrized();
  for (auto _ : state) {
    auto prox = ProxNuclearSymmetric(s, 0.1);
    benchmark::DoNotOptimize(prox);
  }
}
BENCHMARK(BM_ProxNuclearSymmetric)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {32, 64, 128});
    });

void BM_ProxNuclearRandomized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  // Near-low-rank input: the regime where the sketch pays off.
  Rng rng(7);
  const Matrix u = Matrix::RandomGaussian(n, 8, rng);
  Matrix s(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < 8; ++r) sum += u(i, r) * u(j, r);
      s(i, j) = sum;
    }
  }
  RandomizedSvdOptions options;
  options.rank = 16;
  for (auto _ : state) {
    auto prox = ProxNuclearRandomized(s, 0.1, options);
    benchmark::DoNotOptimize(prox);
  }
}
BENCHMARK(BM_ProxNuclearRandomized)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {64, 128, 256});
    });

SocialGraph BenchGraph(std::size_t n) {
  Rng rng(7);
  SocialGraph g(n);
  const std::size_t edges = n * 3;
  while (g.num_edges() < edges) {
    g.AddEdge(rng.NextBounded(n), rng.NextBounded(n));
  }
  return g;
}

void BM_CommonNeighbors(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CommonNeighborsMap(g));
  }
}
BENCHMARK(BM_CommonNeighbors)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {128, 256});
});

void BM_TruncatedKatz(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TruncatedKatzMap(g));
  }
}
BENCHMARK(BM_TruncatedKatz)->Arg(64)->Arg(128)->Arg(256);

// --- Sparse data path vs. its dense counterparts --------------------
// The CSR kernels below produce bit-identical results to the dense
// benchmarks they mirror (BM_Gemm, BM_CommonNeighbors, BM_TruncatedKatz
// and the dense objective); only the asymptotics change
// (O(n³)/O(d·n²) → O(nnz)-driven).

// SpMM: adjacency² in CSR (row-gather SpGEMM) — counterpart of BM_Gemm
// at the same n, on a ~3n-edge graph.
void BM_SpMM(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const CsrMatrix a = BenchGraph(n).AdjacencyCsr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MultiplySparse(a));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SpMM)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 128, 256, 512});
});

void BM_CommonNeighborsCsr(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CommonNeighborsCsr(g));
  }
}
BENCHMARK(BM_CommonNeighborsCsr)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {128, 256, 512});
    });

void BM_TruncatedKatzCsr(benchmark::State& state) {
  const SocialGraph g = BenchGraph(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TruncatedKatzCsr(g));
  }
}
BENCHMARK(BM_TruncatedKatzCsr)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// Eight structural slices assembled in CSR — the feature-build hot
// loop, at the real pipeline's slice count (two graphs' worth of
// CN/JC/AA/RA maps).
SparseTensor3 BenchSparseTensor(const SocialGraph& g1,
                                const SocialGraph& g2) {
  SparseTensor3 tensor(8, g1.num_users(), g1.num_users());
  tensor.SetSlice(0, CommonNeighborsCsr(g1));
  tensor.SetSlice(1, JaccardCsr(g1));
  tensor.SetSlice(2, AdamicAdarCsr(g1));
  tensor.SetSlice(3, ResourceAllocationCsr(g1));
  tensor.SetSlice(4, CommonNeighborsCsr(g2));
  tensor.SetSlice(5, JaccardCsr(g2));
  tensor.SetSlice(6, AdamicAdarCsr(g2));
  tensor.SetSlice(7, ResourceAllocationCsr(g2));
  tensor.NormalizeSlicesMinMax();
  return tensor;
}

void BM_SparseFeatureBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BenchSparseTensor(g1, g2));
  }
}
BENCHMARK(BM_SparseFeatureBuild)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {256, 1024, 2048});
    });

void BM_DenseFeatureBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    Tensor3 tensor(8, n, n);
    tensor.SetSlice(0, CommonNeighborsMap(g1));
    tensor.SetSlice(1, JaccardMap(g1));
    tensor.SetSlice(2, AdamicAdarMap(g1));
    tensor.SetSlice(3, ResourceAllocationMap(g1));
    tensor.SetSlice(4, CommonNeighborsMap(g2));
    tensor.SetSlice(5, JaccardMap(g2));
    tensor.SetSlice(6, AdamicAdarMap(g2));
    tensor.SetSlice(7, ResourceAllocationMap(g2));
    tensor.NormalizeSlicesMinMax();
    benchmark::DoNotOptimize(tensor);
  }
}
BENCHMARK(BM_DenseFeatureBuild)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {256, 1024, 2048});
    });

// Objective data terms (loss + γ‖S‖₁ + the intimacy sweep) with τ = 0 so
// the dense-SVD nuclear norm — identical in both variants — does not
// drown the comparison. The intimacy sweep walks stored entries only
// (sparse, O(nnz)) vs. all d·n² entries (dense). Both read the same
// CSR A^t.
void BM_ObjectiveSparse(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const std::vector<SparseTensor3> tensors = {BenchSparseTensor(g1, g2)};
  const std::vector<double> weights = {0.25};
  Objective objective;
  objective.a = g1.AdjacencyCsr();
  objective.grad_v = BuildIntimacyGradient(tensors, weights, n);
  objective.gamma = 0.3;
  objective.tau = 0.0;
  const Matrix s = RandomMatrix(n, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FullObjectiveValue(objective, s, tensors, weights));
  }
}
BENCHMARK(BM_ObjectiveSparse)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {256, 1024, 2048});
});

void BM_ObjectiveDense(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const SparseTensor3 sparse = BenchSparseTensor(g1, g2);
  const std::vector<Tensor3> tensors = {sparse.ToDense()};
  const std::vector<double> weights = {0.25};
  Objective objective;
  objective.a = g1.AdjacencyCsr();
  objective.grad_v = BuildIntimacyGradient(tensors, weights, n);
  objective.gamma = 0.3;
  objective.tau = 0.0;
  const Matrix s = RandomMatrix(n, 21);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        FullObjectiveValue(objective, s, tensors, weights));
  }
}
BENCHMARK(BM_ObjectiveDense)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {256, 1024, 2048});
});

// --- Factored low-rank solve path -----------------------------------
// The factored prox shrinks the spectrum of a k-column range sketch in
// O(n·k²), so its n axis extends to 16384 where the dense proxes
// (O(n³)) stop at 128–256. The full-solve pair below runs both
// backends on the same problem with a reduced iteration budget (this
// times the per-step cost, not convergence); the dense twin is capped
// at 512, past which a single dense decomposition already exceeds the
// entire factored solve — the crossover recorded in EXPERIMENTS.md.

void BM_ProxNuclearFactored(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  // 24 sketch columns = the default rank 16 + 8 oversampling regime.
  constexpr std::size_t kSketchCols = 24;
  Rng rng(23);
  const Matrix q =
      OrthonormalizeColumns(Matrix::RandomGaussian(n, kSketchCols, rng));
  const Matrix b = Matrix::RandomGaussian(n, kSketchCols, rng);
  const GuardrailOptions guardrails;
  for (auto _ : state) {
    RecoveryStats stats;
    auto prox = GuardedFactoredProxNuclear(q, b, 0.1, guardrails, &stats);
    benchmark::DoNotOptimize(prox);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProxNuclearFactored)
    ->Apply([](benchmark::internal::Benchmark* b) {
      SizeThreadGrid(b, {256, 1024, 4096, 16384});
    });

// Identical reduced budget for both full-solve benchmarks: four
// accepted proximal steps, one CCCP round, no early exit.
CccpOptions BenchSolveOptions() {
  CccpOptions options;
  options.inner.theta = 0.05;
  options.inner.max_iterations = 4;
  options.inner.tol = 0.0;
  options.max_outer_iterations = 1;
  options.outer_tol = 0.0;
  return options;
}

void BM_SolveFactored(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const std::vector<SparseTensor3> tensors = {BenchSparseTensor(g1, g2)};
  const std::vector<double> weights = {0.25};
  FactoredObjective objective;
  objective.a = g1.AdjacencyCsr();
  objective.grad_v = BuildIntimacyGradientCsr(tensors, weights, n);
  objective.gamma = 0.3;
  objective.tau = 0.1;
  const CccpOptions options = BenchSolveOptions();
  const FactoredSolverOptions factored;  // rank 24 + 8 oversampling.
  for (auto _ : state) {
    auto s = SolveCccpFactored(objective, options, factored);
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveFactored)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {256, 1024, 4096, 16384});
});

void BM_SolveDense(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const SocialGraph g1 = BenchGraph(n);
  const SocialGraph g2 = BenchGraph(n);
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const std::vector<SparseTensor3> tensors = {BenchSparseTensor(g1, g2)};
  const std::vector<double> weights = {0.25};
  Objective objective;
  objective.a = g1.AdjacencyCsr();
  objective.grad_v = BuildIntimacyGradient(tensors, weights, n);
  objective.gamma = 0.3;
  objective.tau = 0.1;
  const CccpOptions options = BenchSolveOptions();
  for (auto _ : state) {
    auto s = SolveCccp(objective, options);
    benchmark::DoNotOptimize(s);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SolveDense)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {64, 128, 256, 512});
});

void BM_Auc(benchmark::State& state) {
  Rng rng(9);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<double> scores(n);
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    scores[i] = rng.NextDouble();
    labels[i] = rng.NextBernoulli(0.2) ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAuc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(1000)->Arg(10000);

void BM_GenerateBundle(benchmark::State& state) {
  for (auto _ : state) {
    AlignedGeneratorConfig config = DefaultExperimentConfig(11);
    config.population.num_personas =
        static_cast<std::size_t>(state.range(0));
    auto generated = GenerateAligned(config);
    benchmark::DoNotOptimize(generated);
  }
}
BENCHMARK(BM_GenerateBundle)->Arg(60)->Arg(120);

void BM_GenerateScaleOut(benchmark::State& state) {
  for (auto _ : state) {
    ScaleOutConfig config;
    config.num_users = static_cast<std::size_t>(state.range(0));
    config.seed = 11;
    auto generated = GenerateAlignedScaleOut(config);
    benchmark::DoNotOptimize(generated);
  }
}
BENCHMARK(BM_GenerateScaleOut)->Arg(10000)->Arg(100000);

void BM_PartitionGraph(benchmark::State& state) {
  ScaleOutConfig config;
  config.num_users = static_cast<std::size_t>(state.range(0));
  config.seed = 11;
  auto generated = GenerateAlignedScaleOut(config);
  const SocialGraph graph = SocialGraph::FromHeterogeneousNetwork(
      generated.value().networks.target());
  PartitionOptions options;
  options.max_cluster_size = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PartitionGraph(graph, options));
  }
}
BENCHMARK(BM_PartitionGraph)->Arg(10000)->Arg(100000);

// --- Quantized serving path (DESIGN.md §15) --------------------------
// Quantization cost (per-row affine fit + code emission), dequantized
// lookup cost against the float baseline, and top-K row builds straight
// off the u8 payload — the hot loops behind --quantize serving.

QuantizationBits BitsFromArg(std::int64_t bits) {
  return bits == 16 ? QuantizationBits::kU16 : QuantizationBits::kU8;
}

void BM_QuantizeRow(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  const QuantizationBits bits = BitsFromArg(state.range(2));
  const Matrix s = RandomMatrix(n, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(QuantizedMatrix::FromMatrix(s, bits));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_QuantizeRow)
    ->ArgsProduct({{256, 1024}, {1, 4}, {8, 16}})
    ->ArgNames({"n", "threads", "bits"});

void BM_DequantScore(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const QuantizationBits bits = BitsFromArg(state.range(1));
  const QuantizedMatrix q =
      QuantizedMatrix::FromMatrix(RandomMatrix(n, 23), bits).value();
  for (auto _ : state) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) sum += q.At(i, j);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_DequantScore)
    ->ArgsProduct({{256, 1024}, {8, 16}})
    ->ArgNames({"n", "bits"});

void BM_TopKQuantized(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ThreadCountGuard guard(static_cast<std::size_t>(state.range(1)));
  ModelArtifact artifact;
  artifact.s = RandomMatrix(n, 24);
  ArtifactQuantizerOptions options;
  options.bits = QuantizationBits::kU8;
  ScoringSession session = ScoringSession::FromArtifact(
                               QuantizeModelArtifact(std::move(artifact),
                                                     options)
                                   .value())
                               .value();
  std::size_t u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildTopKRowOrder(session, u));
    u = (u + 1) % n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_TopKQuantized)->Apply([](benchmark::internal::Benchmark* b) {
  SizeThreadGrid(b, {256, 1024});
});

}  // namespace
}  // namespace slampred

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);  // Handles --benchmark_out=... etc.
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext(
      "slampred_default_threads",
      std::to_string(slampred::ThreadPool::Global().num_threads()));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
