// EXP-A1 — ablation of the sparse (γ‖S‖₁) and low-rank (τ‖S‖_*)
// regularizers (Section IV-E "Regularization"): a 2x2 on/off grid plus a
// strong-sparsity point demonstrating the paper's claim that the
// regularization combats class imbalance (it trades broad AUC for
// top-of-the-ranking precision).

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace slampred;
  bench::Banner("Ablation A1",
                "sparse and low-rank regularization contributions");

  const GeneratedAligned generated = bench::MakeBundle();
  const ExperimentOptions base = bench::MakeOptions();

  struct Cell {
    const char* label;
    double gamma;
    double tau;
  };
  const std::vector<Cell> grid = {
      {"no regularization", 0.0, 0.0},
      {"sparse only (gamma)", 0.3, 0.0},
      {"low-rank only (tau)", 0.0, 6.0},
      {"sparse + low-rank (default)", 0.3, 6.0},
      {"strong sparsity (gamma x6)", 2.0, 6.0},
  };

  TablePrinter table({"configuration", "gamma", "tau", "AUC",
                      "Precision@100", "score sparsity"});
  for (const Cell& cell : grid) {
    ExperimentOptions options = base;
    options.slampred.gamma = cell.gamma;
    options.slampred.tau = cell.tau;
    auto runner = ExperimentRunner::Create(generated.networks, options);
    SLAMPRED_CHECK(runner.ok()) << runner.status().ToString();
    auto run = runner.value().RunMethod(MethodId::kSlamPred, 1.0);
    SLAMPRED_CHECK(run.ok()) << run.status().ToString();
    const MethodResult& result = run.value();

    // Fraction of exactly-zero entries in one fitted score matrix (the
    // sparsity the γ term is there to produce).
    const SocialGraph full_graph = SocialGraph::FromHeterogeneousNetwork(
        generated.networks.target());
    SlamPred model(options.slampred);
    SLAMPRED_CHECK(model.Fit(generated.networks, full_graph).ok());
    const double sparsity = model.ScoreMatrix().Sparsity();

    table.AddRow({cell.label, FormatDouble(cell.gamma, 1),
                  FormatDouble(cell.tau, 1),
                  FormatMeanStd(result.auc.mean, result.auc.std),
                  FormatMeanStd(result.precision.mean, result.precision.std),
                  FormatDouble(sparsity, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape: regularizers improve Precision@100; strong\n"
      "sparsity pushes precision further at AUC's expense (the paper's\n"
      "class-imbalance argument).\n");
  return 0;
}
