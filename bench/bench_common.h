// Shared scaffolding for the experiment benches: default bundle, default
// harness options, and environment-variable overrides so a user can
// scale experiments up (e.g. SLAMPRED_BENCH_FOLDS=5) without rebuilding.

#ifndef SLAMPRED_BENCH_BENCH_COMMON_H_
#define SLAMPRED_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <system_error>

#include "datagen/aligned_generator.h"
#include "eval/experiment.h"
#include "util/logging.h"

namespace slampred {
namespace bench {

/// Reads a positive integer from the environment, defaulting otherwise.
inline std::size_t EnvSize(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Reads a seed from SLAMPRED_BENCH_SEED (default 42).
inline std::uint64_t EnvSeed() {
  return static_cast<std::uint64_t>(EnvSize("SLAMPRED_BENCH_SEED", 42));
}

/// Generates the default experiment bundle used by every bench.
/// SLAMPRED_BENCH_PERSONAS overrides the population size — the CI
/// sparse-path leg uses it to smoke-test a larger n than the default.
inline GeneratedAligned MakeBundle() {
  AlignedGeneratorConfig config = DefaultExperimentConfig(EnvSeed());
  config.population.num_personas =
      EnvSize("SLAMPRED_BENCH_PERSONAS", config.population.num_personas);
  auto generated = GenerateAligned(config);
  SLAMPRED_CHECK(generated.ok()) << generated.status().ToString();
  return std::move(generated).value();
}

/// Harness options matching Section IV's protocol, scaled to run in
/// minutes on one core. SLAMPRED_BENCH_FOLDS=5 restores the paper's
/// 5-fold split.
inline ExperimentOptions MakeOptions() {
  ExperimentOptions options;
  options.num_folds = EnvSize("SLAMPRED_BENCH_FOLDS", 3);
  options.negatives_per_positive = 5.0;
  options.precision_k = 100;
  options.slampred.optimization.inner.max_iterations =
      static_cast<int>(EnvSize("SLAMPRED_BENCH_INNER", 60));
  options.slampred.optimization.max_outer_iterations = 2;
  options.seed = 123;
  return options;
}

/// Directory for bench output artifacts (CSV series), created on
/// demand. Defaults to bench_out/ under the working directory — i.e.
/// build/bench_out/ for the usual in-build-tree invocation — keeping
/// generated series out of the source tree. SLAMPRED_BENCH_OUT_DIR
/// overrides it.
inline std::string OutDir() {
  const char* dir = std::getenv("SLAMPRED_BENCH_OUT_DIR");
  std::string path = (dir != nullptr && dir[0] != '\0') ? dir : "bench_out";
  std::error_code ec;
  std::filesystem::create_directories(path, ec);  // Best effort.
  return path;
}

/// Prints the standard bench banner.
inline void Banner(const char* experiment_id, const char* description) {
  std::printf("=== %s: %s ===\n", experiment_id, description);
  std::printf("(synthetic aligned networks; see DESIGN.md for the\n");
  std::printf(" dataset substitution rationale. Shapes, not absolute\n");
  std::printf(" values, are the comparison target.)\n\n");
}

}  // namespace bench
}  // namespace slampred

#endif  // SLAMPRED_BENCH_BENCH_COMMON_H_
